open Protocols

type run_view = {
  outcome : Runner.outcome;
  byzantine : int -> bool;
  terminated : int -> (Sim.Sim_time.t * string) option;
  net : int -> int;
}

let view (outcome : Runner.outcome) =
  let faults = outcome.Runner.fault_names in
  let byzantine pid = List.mem_assoc pid faults in
  let terms = Runner.terminated_pids outcome in
  let terminated pid =
    List.find_map
      (fun (p, tag, t) -> if p = pid then Some (t, tag) else None)
      terms
  in
  let env = outcome.Runner.env in
  let topo = env.Env.topo in
  let n = Topology.hops topo in
  let net pid =
    match Topology.customer_index topo pid with
    | None -> 0
    | Some i ->
        let down =
          if i < n then
            Runner.balance outcome ~escrow:i ~pid - Env.amount_at env i
          else 0
        in
        let up =
          if i > 0 then Runner.balance outcome ~escrow:(i - 1) ~pid else 0
        in
        down + up
  in
  { outcome; byzantine; terminated; net }

let env v = v.outcome.Runner.env
let topo v = (env v).Env.topo
let obs v = Runner.observations v.outcome

let escrows_abide v i =
  (* do the escrows of customer c_i abide? *)
  let t = topo v in
  let up_ok =
    i = 0 || not (v.byzantine (Topology.escrow t (i - 1)))
  in
  let down_ok =
    i = Topology.hops t || not (v.byzantine (Topology.escrow t i))
  in
  up_ok && down_ok

let made_payment v pid =
  List.exists
    (function
      | Sim.Trace.Sent { src; msg = Msg.Money _; _ } -> src = pid
      | Sim.Trace.Sent { src; msg = Msg.Htlc_setup _; _ } -> src = pid
      | _ -> false)
    (Sim.Trace.to_list v.outcome.Runner.trace)

let issued_cert v pid =
  List.exists
    (fun (_, _, o) ->
      match o with Obs.Cert_issued { by; _ } -> by = pid | _ -> false)
    (obs v)

let received_cert v pid kind =
  List.exists
    (fun (_, _, o) ->
      match o with
      | Obs.Cert_received { pid = p; kind = k; valid } ->
          p = pid && k = kind && valid
      | _ -> false)
    (obs v)

let bob_paid v = v.net (Topology.bob (topo v)) > 0
let alice_has_chi v = received_cert v (Topology.alice (topo v)) Obs.Chi

let money_conserved v =
  Array.for_all
    (fun book -> Result.is_ok (Ledger.Book.audit book))
    (env v).Env.books

(* ---- Definition 1 ---- *)

let check_c v =
  let structural =
    match v.outcome.Runner.protocol with
    | Runner.Sync_timebound | Runner.Naive_universal ->
        Sync_protocol.check_all (env v)
    | Runner.Htlc | Runner.Weak _ | Runner.Atomic _ -> Ok ()
  in
  match structural with
  | Error e -> Verdict.violated "C" ("ill-formed automaton: " ^ e)
  | Ok () -> (
      let honest_rejection =
        List.find_map
          (fun (_, _, o) ->
            match o with
            | Obs.Rejected { pid; what } when not (v.byzantine pid) ->
                Some (Fmt.str "pid %d could not abide: %s" pid what)
            | _ -> None)
          (obs v)
      in
      match honest_rejection with
      | Some w -> Verdict.violated "C" w
      | None -> Verdict.ok "C" "every honest step was executable")

let check_t ~time_bounded v =
  let t = topo v in
  let params = v.outcome.Runner.params in
  let bound_for i =
    (* the per-customer a-priori period, when the vector covers this run's
       topology; the global horizon otherwise *)
    if i < Array.length params.Params.customer_bound then
      params.Params.customer_bound.(i)
    else params.Params.horizon
  in
  let problems =
    List.filter_map
      (fun pid ->
        let i = Option.get (Topology.customer_index t pid) in
        if
          v.byzantine pid
          || (not (escrows_abide v i))
          || not (made_payment v pid || issued_cert v pid)
        then None
        else
          match v.terminated pid with
          | None -> Some (Fmt.str "c%d (pid %d) never terminated" i pid)
          | Some (time, _) ->
              if time_bounded && Sim.Sim_time.(time > bound_for i) then
                Some
                  (Fmt.str "c%d terminated at %a, past its bound %a" i
                     Sim.Sim_time.pp time Sim.Sim_time.pp (bound_for i))
              else None)
      (Topology.customers t)
  in
  match problems with
  | [] ->
      Verdict.ok "T"
        (if time_bounded then "all active honest customers terminated in bound"
         else "all active honest customers terminated")
  | w :: _ -> Verdict.violated "T" w

let check_es v =
  let t = topo v in
  let problems =
    List.filter_map
      (fun epid ->
        if v.byzantine epid then None
        else
          let i = Option.get (Topology.escrow_index t epid) in
          let book = (env v).Env.books.(i) in
          match Ledger.Book.audit book with
          | Error e -> Some (Fmt.str "e%d book audit failed: %s" i e)
          | Ok () ->
              if Ledger.Book.balance book epid < 0 then
                Some (Fmt.str "e%d lost money" i)
              else None)
      (Topology.escrows t)
  in
  match problems with
  | [] -> Verdict.ok "ES" "no honest escrow lost money"
  | w :: _ -> Verdict.violated "ES" w

let check_cs1 v =
  let t = topo v in
  let alice = Topology.alice t in
  if v.byzantine alice || not (escrows_abide v 0) then
    Verdict.vacuous "CS1" "Alice or her escrow is Byzantine"
  else
    match v.terminated alice with
    | None -> Verdict.vacuous "CS1" "Alice has not terminated (see T)"
    | Some _ ->
        if v.net alice >= 0 then Verdict.ok "CS1" "Alice got her money back"
        else if alice_has_chi v then Verdict.ok "CS1" "Alice holds χ"
        else
          Verdict.violated "CS1"
            (Fmt.str "Alice terminated with net %d and no χ" (v.net alice))

let check_cs2 v =
  let t = topo v in
  let bob = Topology.bob t in
  let n = Topology.hops t in
  if v.byzantine bob || not (escrows_abide v n) then
    Verdict.vacuous "CS2" "Bob or his escrow is Byzantine"
  else
    match v.terminated bob with
    | None -> Verdict.vacuous "CS2" "Bob has not terminated (see T)"
    | Some _ ->
        if bob_paid v then Verdict.ok "CS2" "Bob was paid"
        else if not (issued_cert v bob) then
          Verdict.ok "CS2" "Bob issued no certificate"
        else
          Verdict.violated "CS2" "Bob issued χ, terminated, and was not paid"

let check_cs3 v =
  let t = topo v in
  let problems =
    List.filter_map
      (fun pid ->
        let i = Option.get (Topology.customer_index t pid) in
        if v.byzantine pid || not (escrows_abide v i) then None
        else
          match v.terminated pid with
          | None -> None (* T's department *)
          | Some _ ->
              if v.net pid >= 0 then None
              else Some (Fmt.str "Chloe%d terminated with net %d" i (v.net pid)))
      (Topology.connectors t)
  in
  match problems with
  | [] -> Verdict.ok "CS3" "every terminated honest connector is whole"
  | w :: _ -> Verdict.violated "CS3" w

let no_faults v =
  v.outcome.Runner.fault_names = []
  &&
  match v.outcome.Runner.protocol with
  | Runner.Weak { Weak_protocol.notary_faults; _ } ->
      Array.for_all
        (function Weak_protocol.Notary_honest -> true | _ -> false)
        notary_faults
  | _ -> true

let check_l v =
  if not (no_faults v) then Verdict.vacuous "L" "some party does not abide"
  else if bob_paid v then Verdict.ok "L" "Bob was paid"
  else Verdict.violated "L" "all parties abided and Bob was not paid"

let check_def1 ~time_bounded v =
  [
    check_c v;
    check_t ~time_bounded v;
    check_es v;
    check_cs1 v;
    check_cs2 v;
    check_cs3 v;
    check_l v;
  ]

(* ---- Definition 2 ---- *)

let decisions v =
  List.filter_map
    (fun (_, _, o) ->
      match o with
      | Obs.Decision_made { by; commit } -> Some (by, commit)
      | _ -> None)
    (obs v)

let check_cc v =
  let ds = decisions v in
  let commits = List.exists (fun (by, c) -> c && not (v.byzantine by)) ds in
  let aborts =
    List.exists (fun (by, c) -> (not c) && not (v.byzantine by)) ds
  in
  (* also: no participant accepted both kinds of certificate *)
  let accepted kind pid = received_cert v pid kind in
  let both_accepted =
    List.exists
      (fun pid -> accepted Obs.Chi_commit pid && accepted Obs.Chi_abort pid)
      (Topology.customers (topo v))
  in
  if commits && aborts then
    Verdict.violated "CC" "both commit and abort were decided"
  else if both_accepted then
    Verdict.violated "CC" "a customer accepted both χc and χa"
  else Verdict.ok "CC" "at most one certificate kind exists"

let tm_trusted v =
  match v.outcome.Runner.protocol with
  | Runner.Weak { Weak_protocol.tm = Weak_protocol.Single; _ } -> true
  | Runner.Weak { Weak_protocol.tm = Weak_protocol.Chain _; _ } -> true
  | Runner.Atomic _ -> true
  | Runner.Weak
      { Weak_protocol.tm = Weak_protocol.Committee { f }; notary_faults; _ } ->
      let bad =
        Array.fold_left
          (fun acc nf ->
            match nf with Weak_protocol.Notary_honest -> acc | _ -> acc + 1)
          0 notary_faults
      in
      bad <= f
  | _ -> false

let check_t_weak v =
  if not (tm_trusted v) then
    Verdict.vacuous "T" "transaction manager outside its fault assumption"
  else
    let t = topo v in
    let problems =
      List.filter_map
        (fun pid ->
          let i = Option.get (Topology.customer_index t pid) in
          if v.byzantine pid || not (escrows_abide v i) then None
          else
            match v.terminated pid with
            | Some _ -> None
            | None -> Some (Fmt.str "c%d never terminated" i))
        (Topology.customers t)
    in
    match problems with
    | [] -> Verdict.ok "T" "all honest customers terminated"
    | w :: _ -> Verdict.violated "T" w

let check_cs1_weak v =
  let t = topo v in
  let alice = Topology.alice t in
  if v.byzantine alice || (not (escrows_abide v 0)) || not (tm_trusted v) then
    Verdict.vacuous "CS1w" "hypotheses not met"
  else
    match v.terminated alice with
    | None -> Verdict.vacuous "CS1w" "Alice has not terminated (see T)"
    | Some _ ->
        if v.net alice >= 0 then Verdict.ok "CS1w" "Alice got her money back"
        else if received_cert v alice Obs.Chi_commit then
          Verdict.ok "CS1w" "Alice holds χc"
        else
          Verdict.violated "CS1w"
            (Fmt.str "Alice terminated with net %d and no χc" (v.net alice))

let check_cs2_weak v =
  let t = topo v in
  let bob = Topology.bob t in
  let n = Topology.hops t in
  if v.byzantine bob || (not (escrows_abide v n)) || not (tm_trusted v) then
    Verdict.vacuous "CS2w" "hypotheses not met"
  else
    match v.terminated bob with
    | None -> Verdict.vacuous "CS2w" "Bob has not terminated (see T)"
    | Some _ ->
        if bob_paid v then Verdict.ok "CS2w" "Bob was paid"
        else if received_cert v bob Obs.Chi_abort then
          Verdict.ok "CS2w" "Bob holds χa"
        else Verdict.violated "CS2w" "Bob terminated with neither money nor χa"

let check_l_weak ~patience_sufficient v =
  if not (no_faults v) then Verdict.vacuous "Lw" "some party does not abide"
  else if not patience_sufficient then
    Verdict.vacuous "Lw" "patience declared insufficient for this schedule"
  else if bob_paid v then Verdict.ok "Lw" "Bob was paid"
  else Verdict.violated "Lw" "patient run, all abided, Bob unpaid"

let check_def2 ~patience_sufficient v =
  [
    check_c v;
    check_cc v;
    check_t_weak v;
    check_es v;
    check_cs1_weak v;
    check_cs2_weak v;
    check_cs3 v;
    check_l_weak ~patience_sufficient v;
  ]

let lock_time v =
  let end_time = v.outcome.Runner.end_time in
  let events = obs v in
  let deposits =
    List.filter_map
      (fun (t, _, o) ->
        match o with
        | Obs.Deposited { escrow; deposit; _ } -> Some ((escrow, deposit), t)
        | _ -> None)
      events
  in
  let resolution key =
    List.find_map
      (fun (t, _, o) ->
        match o with
        | Obs.Released { escrow; deposit; _ }
        | Obs.Refunded { escrow; deposit; _ }
          when (escrow, deposit) = key ->
            Some t
        | _ -> None)
      events
  in
  List.fold_left
    (fun acc (key, t0) ->
      let t1 = Option.value ~default:end_time (resolution key) in
      Sim.Sim_time.add acc (Sim.Sim_time.sub t1 t0))
    Sim.Sim_time.zero deposits
