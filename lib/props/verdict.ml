type t = {
  property : string;
  applicable : bool;
  holds : bool;
  detail : string;
}

type report = t list

let ok property detail = { property; applicable = true; holds = true; detail }

let violated property detail =
  { property; applicable = true; holds = false; detail }

let vacuous property detail =
  { property; applicable = false; holds = true; detail }

let all_hold report = List.for_all (fun v -> (not v.applicable) || v.holds) report
let failures report = List.filter (fun v -> v.applicable && not v.holds) report
let find report name = List.find_opt (fun v -> String.equal v.property name) report

let holds report name =
  match find report name with
  | None -> false
  | Some v -> (not v.applicable) || v.holds

let pp ppf v =
  let mark =
    if not v.applicable then "n/a" else if v.holds then "ok" else "VIOLATED"
  in
  Fmt.pf ppf "%-4s %-8s %s" v.property mark v.detail

let pp_report ppf report = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp) report
