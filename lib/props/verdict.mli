(** Property verdicts.

    Every check yields a {!t}: whether the property was {e applicable} in
    this run (its preconditions — "if Alice and her escrow abide by the
    protocol…" — were met), whether it {e held}, and a human-readable
    witness when it did not. A report is the list of verdicts for one run;
    experiment tables aggregate reports over many runs. *)

type t = {
  property : string;  (** "C", "T", "ES", "CS1", … *)
  applicable : bool;
      (** false when the property's hypotheses exclude this run (e.g. CS1
          when Alice's escrow is Byzantine) — an inapplicable property
          cannot fail *)
  holds : bool;  (** meaningful only when [applicable] *)
  detail : string;  (** witness of failure, or a short confirmation *)
}

type report = t list

val ok : string -> string -> t
val violated : string -> string -> t
val vacuous : string -> string -> t

val all_hold : report -> bool
(** Every applicable property holds. *)

val failures : report -> t list
val find : report -> string -> t option
val holds : report -> string -> bool
(** True if the named property is inapplicable or held. *)

val pp : Format.formatter -> t -> unit
val pp_report : Format.formatter -> report -> unit
