(** Runtime verification of the escrow promises G(d) and P(a).

    The paper's protocol correctness rests on two signed promises, both
    stated in the {e issuing escrow's local time}:

    - [G(d)]: "I guarantee that if I receive $ from you at my local time w,
      then I will send you either $ or χ by my local time w + d."
    - [P(a)]: "I promise that if I receive χ from you at my time v, with
      v < now + a, then I will send you $ by my local time v + ε."

    These monitors replay a run's trace against the promises the escrows
    {e actually issued} (the d and a are read out of the signed promise
    messages, not out of the configuration), converting global trace
    timestamps into each escrow's local clock. An honest escrow must never
    breach a promise it issued — that is the operational content of
    property C for escrows — while Byzantine strategies such as the
    premature refunder are caught red-handed. *)

type breach = {
  escrow : int;  (** pid *)
  promise : string;  (** "G" or "P" *)
  detail : string;
}

val breaches : Payment_props.run_view -> breach list
(** Every promise breach in the run, by any escrow. The ε used for P is
    the run's derived [Params.epsilon]. *)

val check_promises : Payment_props.run_view -> Verdict.t
(** Property "PR": no {e honest} escrow breached a promise it issued.
    (A Byzantine escrow's breaches void its customers' guarantees instead —
    that accounting is in {!Payment_props}.) *)

val pp_breach : Format.formatter -> breach -> unit
