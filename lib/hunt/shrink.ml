module FP = Faults.Fault_plan

(* Well-founded size measure: lexicographic (clause count, total window
   span, total probability mass). Every candidate the shrinker proposes
   strictly decreases it, so the greedy loop terminates at a fixpoint
   even without the [max_trials] safety cap. Unbounded windows are
   measured against the horizon so "tighten the start" still counts as
   progress on them. *)
let measure ~horizon (p : FP.t) =
  let span_of at until_ =
    match until_ with
    | Some u -> Sim.Sim_time.sub u at
    | None -> Stdlib.max 0 (horizon - at)
  in
  let span =
    List.fold_left (fun a c -> a + span_of c.FP.at c.FP.recover_at) 0 p.FP.crashes
    + List.fold_left
        (fun a s -> a + span_of s.FP.from_ s.FP.until_)
        0 p.FP.partitions
  in
  let pm =
    List.fold_left
      (fun a r -> a + r.FP.drop_pm + r.FP.dup_pm + r.FP.corrupt_pm)
      0 p.FP.links
    + p.FP.gst_jitter
  in
  (FP.clause_count p, span, pm)

let smaller ~horizon a b = compare (measure ~horizon a) (measure ~horizon b) < 0

let patch xs i f =
  List.concat (List.mapi (fun j x -> if j = i then f x else [ x ]) xs)

(* All single-step reductions of [p], most aggressive first. Each is
   strictly smaller under [measure]. *)
let candidates ~horizon (p : FP.t) =
  let out = ref [] in
  let add c = out := c :: !out in
  (* gst halving / probability halving / window tightening, collected in
     reverse so that clause deletions end up first after the final rev *)
  if p.FP.gst_jitter >= 2 then
    add { p with FP.gst_jitter = p.FP.gst_jitter / 2 };
  List.iteri
    (fun i s ->
      let dur =
        match s.FP.until_ with
        | Some u -> Sim.Sim_time.sub u s.FP.from_
        | None -> Stdlib.max 0 (horizon - s.FP.from_)
      in
      if dur >= 2 then begin
        (* tighten the start: keep the healing edge, drop the first half *)
        let from_ = s.FP.from_ + (dur / 2) in
        add
          {
            p with
            FP.partitions =
              patch p.FP.partitions i (fun s -> [ { s with FP.from_ } ]);
          };
        (* halve a bounded outage from the right *)
        match s.FP.until_ with
        | Some _ ->
            let until_ = Some (s.FP.from_ + (dur - (dur / 2))) in
            add
              {
                p with
                FP.partitions =
                  patch p.FP.partitions i (fun s -> [ { s with FP.until_ } ]);
              }
        | None -> ()
      end)
    p.FP.partitions;
  List.iteri
    (fun i c ->
      let dur =
        match c.FP.recover_at with
        | Some r -> Sim.Sim_time.sub r c.FP.at
        | None -> Stdlib.max 0 (horizon - c.FP.at)
      in
      if dur >= 2 then begin
        let at = c.FP.at + (dur / 2) in
        add
          {
            p with
            FP.crashes = patch p.FP.crashes i (fun c -> [ { c with FP.at } ]);
          };
        match c.FP.recover_at with
        | Some _ ->
            let recover_at = Some (c.FP.at + (dur - (dur / 2))) in
            add
              {
                p with
                FP.crashes =
                  patch p.FP.crashes i (fun c -> [ { c with FP.recover_at } ]);
              }
        | None -> ()
      end)
    p.FP.crashes;
  List.iteri
    (fun i r ->
      let halve pm = if pm >= 2 then pm / 2 else pm in
      let r' =
        {
          r with
          FP.drop_pm = halve r.FP.drop_pm;
          dup_pm = halve r.FP.dup_pm;
          corrupt_pm = halve r.FP.corrupt_pm;
        }
      in
      if r' <> r then
        add { p with FP.links = patch p.FP.links i (fun _ -> [ r' ]) })
    p.FP.links;
  (* clause deletions — tried first: they shrink the measure the most *)
  if p.FP.gst_jitter > 0 then add { p with FP.gst_jitter = 0 };
  List.iteri
    (fun i _ -> add { p with FP.partitions = patch p.FP.partitions i (fun _ -> []) })
    p.FP.partitions;
  List.iteri
    (fun i _ -> add { p with FP.crashes = patch p.FP.crashes i (fun _ -> []) })
    p.FP.crashes;
  List.iteri
    (fun i _ -> add { p with FP.links = patch p.FP.links i (fun _ -> []) })
    p.FP.links;
  List.rev !out

(* Drop every clause the original run never activated, in one shot.
   [fired] is clause-aligned with [p] (links, crashes, partitions, then a
   gst slot iff gst_jitter > 0) as produced by
   {!Faults.Injector.clause_hits}. *)
let drop_unfired (p : FP.t) ~(fired : int array) =
  let nl = List.length p.FP.links in
  let nc = List.length p.FP.crashes in
  let np = List.length p.FP.partitions in
  let expect = nl + nc + np + if p.FP.gst_jitter > 0 then 1 else 0 in
  if Array.length fired <> expect then None
  else begin
    let keep off xs =
      List.filteri (fun i _ -> fired.(off + i) > 0) xs
    in
    let q =
      {
        FP.links = keep 0 p.FP.links;
        crashes = keep nl p.FP.crashes;
        partitions = keep (nl + nc) p.FP.partitions;
        gst_jitter =
          (if p.FP.gst_jitter > 0 && fired.(nl + nc + np) > 0 then
             p.FP.gst_jitter
           else 0);
      }
    in
    if q = p then None else Some q
  end

let shrink ~nprocs ~horizon ~signature ~replay ?fired ?(max_trials = 400) p0 =
  let trials = ref 0 in
  let ok q =
    (not (FP.is_none q))
    && FP.validate q ~nprocs = Ok ()
    &&
    (incr trials;
     String.equal (replay q) signature)
  in
  let cur = ref p0 in
  (match Option.bind fired (fun f -> drop_unfired p0 ~fired:f) with
  | Some q when !trials < max_trials && ok q -> cur := q
  | _ -> ());
  let progress = ref true in
  while !progress && !trials < max_trials do
    progress := false;
    let rec first = function
      | [] -> ()
      | q :: rest ->
          if !trials >= max_trials then ()
          else if smaller ~horizon q !cur && ok q then begin
            cur := q;
            progress := true
          end
          else first rest
    in
    first (candidates ~horizon !cur)
  done;
  (!cur, !trials)
