(** Coverage-guided adversarial schedule hunting.

    Where {!Xchain.Chaos.soak} samples fault plans uniformly, the hunt
    {e searches}: it keeps a corpus of one witness plan per distinct
    outcome {!Signature.t}, and spends its budget mutating corpus
    members ({!Mutate.mutate}) toward signatures it has not seen yet.

    Structure of one hunt:

    + {b Generation 0} replays the uniform soak stream exactly (run [i]
      draws its plan from [seed + i + 7919] alone), so the hunt's early
      discoveries coincide with the soak's and the comparison against a
      uniform baseline is apples-to-apples.
    + Each later generation drafts [gen_size] candidates on the calling
      domain — usually a mutation of a random corpus member, 1-in-10 a
      fresh random plan — and evaluates them fleet-parallel. Runs whose
      signature is new enter the corpus.
    + Every {e stuck} or {e safety-violation} witness is then minimized
      ({!Shrink.shrink}) to a smallest plan with the same signature,
      and its one-line repro re-emitted.

    Candidate plans are drafted sequentially between fleet batches and
    every run is a pure function of [(run seed, plan)], so the whole
    report — corpus, signatures, repros — is byte-identical for any
    domain count; only the trailing timing block of the JSON report
    varies. *)

type entry = {
  gen : int;  (** generation that discovered this signature *)
  index : int;  (** global run index within the hunt *)
  seed : int;  (** run seed ([root seed + index]) *)
  plan : Faults.Fault_plan.t;
  classification : Xchain.Chaos.classification;
  signature : string;  (** {!Signature.to_string} key *)
  fired : int array;  (** per-clause activation counts for [plan] *)
  mutable shrunk : (Faults.Fault_plan.t * int) option;
      (** minimized plan and shrink-replay count, for stuck / violating
          witnesses when shrinking is on *)
}

type gen_stat = { gen : int; runs : int; novel : int }

type report = {
  budget : int;
  gen_size : int;
  hops : int;
  protocol : Protocols.Runner.protocol;
  seed : int;
  generations : gen_stat list;
  corpus : entry list;  (** one witness per signature, discovery order *)
  signatures : int;
  uniform_signatures : int;
      (** distinct signatures of a uniform sweep at the same budget and
          root seed; [-1] when the baseline was not requested *)
  commits : int;
  aborts : int;
  stuck : int;
  violations : int;
  shrink_trials : int;
  events : int;  (** engine events across hunt runs (deterministic;
                     excludes baseline and shrink replays) *)
  domains : int;
  wall_ns : int;  (** nondeterministic — keep out of byte-compared
                      output *)
}

val hunt :
  ?hops:int ->
  ?protocol:Protocols.Runner.protocol ->
  ?gen_size:int ->
  ?domains:int ->
  ?baseline:bool ->
  ?shrink:bool ->
  ?max_shrink_trials:int ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  budget:int ->
  seed:int ->
  unit ->
  report
(** [hunt ~budget ~seed ()] runs [budget] chaos executions (default:
    2 hops, sync protocol, generations of [gen_size = 50]).
    [baseline] additionally runs the uniform sweep at the same budget
    and fills [uniform_signatures]. [shrink] (default [true]) minimizes
    interesting witnesses; [max_shrink_trials] caps replays per witness.
    [on_progress] reports hunt runs completed (out of [budget]) from the
    calling domain. Raises [Invalid_argument] on non-positive [budget]
    or [gen_size]. *)

val repro_line : hops:int -> protocol:Protocols.Runner.protocol -> entry -> string
(** One-line replay command, using the shrunken plan when available. *)

val repro_lines : report -> string list
(** Repro lines for every stuck / violating corpus entry. *)

val pp_report : Format.formatter -> report -> unit
(** Summary counts, then a repro line per interesting witness. Never
    prints timing. *)

val report_to_json : report -> string
(** The hunt as one JSON object. Deterministic except the trailing
    ["timing"] block — strip it (scripts/strip_timing.py) before
    byte-comparing across domain counts. *)

val corpus_to_jsonl : report -> string
(** One JSON object per corpus entry, one per line, discovery order. *)
