module C = Xchain.Chaos
module Runner = Protocols.Runner
module FP = Faults.Fault_plan
module Rng = Sim.Rng

type entry = {
  gen : int;
  index : int;
  seed : int;
  plan : FP.t;
  classification : C.classification;
  signature : string;
  fired : int array;
  mutable shrunk : (FP.t * int) option;
}

type gen_stat = { gen : int; runs : int; novel : int }

type report = {
  budget : int;
  gen_size : int;
  hops : int;
  protocol : Runner.protocol;
  seed : int;
  generations : gen_stat list;
  corpus : entry list;
  signatures : int;
  uniform_signatures : int;
  commits : int;
  aborts : int;
  stuck : int;
  violations : int;
  shrink_trials : int;
  events : int;
  domains : int;
  wall_ns : int;
}

let interesting (e : entry) =
  match e.classification with
  | C.Stuck | C.Safety_violation -> true
  | C.Safe_commit | C.Safe_abort -> false

let repro_plan (e : entry) =
  match e.shrunk with Some (p, _) -> p | None -> e.plan

let repro_line ~hops ~protocol (e : entry) =
  Printf.sprintf "xchain chaos -p %s --hops %d --seed %d --plan '%s'"
    (C.protocol_flag protocol) hops e.seed
    (FP.to_string (repro_plan e))

(* the soak's uniform plan stream: run [i] of a uniform sweep rooted at
   [seed] draws its plan from [seed + i + 7919] alone (see Chaos.soak).
   Generation 0 and the [baseline] sweep replicate it exactly so
   hunt-vs-uniform comparisons are apples-to-apples. *)
let uniform_plan ~nprocs ~horizon ~run_seed =
  let prng = Rng.create ~seed:(run_seed + 7919) in
  FP.random prng ~nprocs ~horizon

let fail_job (f : Fleet.failure) =
  failwith
    (Printf.sprintf "hunt: job %d raised: %s" f.Fleet.job f.Fleet.message)

let hunt ?(hops = 2) ?(protocol = Runner.Sync_timebound) ?(gen_size = 50)
    ?domains ?(baseline = false) ?(shrink = true) ?max_shrink_trials
    ?on_progress ~budget ~seed () =
  if budget <= 0 then invalid_arg "Hunt.hunt: budget must be positive";
  if gen_size <= 0 then invalid_arg "Hunt.hunt: gen_size must be positive";
  let nprocs = (2 * hops) + 1 in
  let cfg = Runner.default_config ~hops ~seed in
  let horizon = (Runner.derive_params cfg protocol).Protocols.Params.horizon in
  let delta = cfg.Runner.delta + cfg.Runner.sigma in
  let run_plan ~plan ~run_seed =
    let causal = Obsv.Causal.create () in
    (* the online monitor stamps violating runs with their first-breach
       sim-time, which the signature buckets: two plans that break the
       same property at different phases of the run are distinct finds *)
    let monitor = Obsv.Monitor.create () in
    let r =
      C.run_one ~hops ~protocol ~causal ~monitor ~plan ~seed:run_seed ()
    in
    (r, Signature.to_string (Signature.of_run ~causal ~delta r))
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let corpus_rev = ref [] in
  let corpus_plans = ref [||] in
  let generations = ref [] in
  let commits = ref 0
  and aborts = ref 0
  and stuck = ref 0
  and violations = ref 0
  and events = ref 0
  and max_domains = ref 1
  and wall_ns = ref 0 in
  (* Mutations draw from this generator on the calling domain only,
     between fleet batches — the whole schedule of candidate plans is a
     pure function of [seed] and never depends on the domain count. *)
  let mut_rng = Rng.create ~seed:(seed + 524287) in
  let done_ = ref 0 in
  let gen = ref 0 in
  while !done_ < budget do
    let batch = Stdlib.min gen_size (budget - !done_) in
    let base = !done_ in
    (* candidate plans for this generation, drawn before the fleet runs *)
    let plans =
      Array.init batch (fun j ->
          let run_seed = seed + base + j in
          if !gen = 0 then uniform_plan ~nprocs ~horizon ~run_seed
          else if Array.length !corpus_plans = 0 || Rng.int mut_rng 10 = 0
          then FP.normalize (FP.random mut_rng ~nprocs ~horizon)
          else
            Mutate.mutate mut_rng ~nprocs ~horizon ~corpus:!corpus_plans
              (Rng.choose mut_rng !corpus_plans))
    in
    let on_progress =
      Option.map
        (fun f ~completed ~total:_ ->
          f ~completed:(base + completed) ~total:budget)
        on_progress
    in
    let outcomes, stats =
      Fleet.run ?domains ?on_progress ~jobs:batch (fun j ->
          run_plan ~plan:plans.(j) ~run_seed:(seed + base + j))
    in
    max_domains := Stdlib.max !max_domains stats.Fleet.domains;
    wall_ns := !wall_ns + stats.Fleet.wall_ns;
    let novel = ref 0 in
    Array.iteri
      (fun j outcome ->
        match outcome with
        | Error f -> fail_job f
        | Ok ((r : C.run_result), signature) ->
            events := !events + r.C.events;
            (match r.C.classification with
            | C.Safe_commit -> incr commits
            | C.Safe_abort -> incr aborts
            | C.Stuck -> incr stuck
            | C.Safety_violation -> incr violations);
            if not (Hashtbl.mem seen signature) then begin
              Hashtbl.add seen signature ();
              incr novel;
              corpus_rev :=
                {
                  gen = !gen;
                  index = base + j;
                  seed = seed + base + j;
                  plan = plans.(j);
                  classification = r.C.classification;
                  signature;
                  fired = r.C.fired;
                  shrunk = None;
                }
                :: !corpus_rev
            end)
      outcomes;
    corpus_plans :=
      Array.of_list (List.rev_map (fun e -> e.plan) !corpus_rev);
    generations := { gen = !gen; runs = batch; novel = !novel } :: !generations;
    done_ := !done_ + batch;
    incr gen
  done;
  let corpus = List.rev !corpus_rev in
  (* uniform baseline at the same budget and root seed, for the
     hunt-beats-uniform comparison; generation 0 is its prefix *)
  let uniform_signatures =
    if not baseline then -1
    else begin
      let outcomes, stats =
        Fleet.run ?domains ~jobs:budget (fun i ->
            let run_seed = seed + i in
            let plan = uniform_plan ~nprocs ~horizon ~run_seed in
            snd (run_plan ~plan ~run_seed))
      in
      max_domains := Stdlib.max !max_domains stats.Fleet.domains;
      wall_ns := !wall_ns + stats.Fleet.wall_ns;
      let u = Hashtbl.create 64 in
      Array.iter
        (fun outcome ->
          match outcome with
          | Error f -> fail_job f
          | Ok signature -> Hashtbl.replace u signature ())
        outcomes;
      Hashtbl.length u
    end
  in
  (* shrink every stuck / violating witness to a minimal repro *)
  let shrink_trials = ref 0 in
  if shrink then begin
    let targets = Array.of_list (List.filter interesting corpus) in
    if Array.length targets > 0 then begin
      let outcomes, stats =
        Fleet.run ?domains ~jobs:(Array.length targets) (fun i ->
            let e = targets.(i) in
            let replay q = snd (run_plan ~plan:q ~run_seed:e.seed) in
            Shrink.shrink ~nprocs ~horizon ~signature:e.signature ~replay
              ~fired:e.fired ?max_trials:max_shrink_trials e.plan)
      in
      max_domains := Stdlib.max !max_domains stats.Fleet.domains;
      wall_ns := !wall_ns + stats.Fleet.wall_ns;
      Array.iteri
        (fun i outcome ->
          match outcome with
          | Error f -> fail_job f
          | Ok ((q, trials) as s) ->
              ignore q;
              shrink_trials := !shrink_trials + trials;
              targets.(i).shrunk <- Some s)
        outcomes
    end
  end;
  {
    budget;
    gen_size;
    hops;
    protocol;
    seed;
    generations = List.rev !generations;
    corpus;
    signatures = Hashtbl.length seen;
    uniform_signatures;
    commits = !commits;
    aborts = !aborts;
    stuck = !stuck;
    violations = !violations;
    shrink_trials = !shrink_trials;
    events = !events;
    domains = !max_domains;
    wall_ns = !wall_ns;
  }

let repro_lines r =
  List.map
    (repro_line ~hops:r.hops ~protocol:r.protocol)
    (List.filter interesting r.corpus)

let pp_report ppf r =
  Fmt.pf ppf "hunt: %d runs over %d generations, %d signatures" r.budget
    (List.length r.generations) r.signatures;
  if r.uniform_signatures >= 0 then
    Fmt.pf ppf " (uniform baseline: %d)" r.uniform_signatures;
  Fmt.pf ppf "@,  commits=%d aborts=%d stuck=%d violations=%d events=%d"
    r.commits r.aborts r.stuck r.violations r.events;
  let shrunk = List.filter (fun e -> e.shrunk <> None) r.corpus in
  Fmt.pf ppf "@,  corpus: %d entries, %d shrunk (%d shrink trials)"
    (List.length r.corpus) (List.length shrunk) r.shrink_trials;
  List.iter
    (fun e ->
      Fmt.pf ppf "@,  [%s] %s"
        (C.classification_name e.classification)
        (repro_line ~hops:r.hops ~protocol:r.protocol e))
    (List.filter interesting r.corpus)

let entry_json ~hops ~protocol (e : entry) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"gen\":%d,\"index\":%d,\"seed\":%d,\"classification\":\"%s\",\
        \"signature\":\"%s\",\"plan\":\"%s\""
       e.gen e.index e.seed
       (C.classification_name e.classification)
       (Obsv.Metrics.json_escape e.signature)
       (Obsv.Metrics.json_escape (FP.to_string e.plan)));
  (match e.shrunk with
  | Some (q, trials) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"shrunk\":\"%s\",\"shrink_trials\":%d"
           (Obsv.Metrics.json_escape (FP.to_string q))
           trials)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf ",\"repro\":\"%s\"}"
       (Obsv.Metrics.json_escape (repro_line ~hops ~protocol e)));
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"hunt\":{\"budget\":%d,\"gen_size\":%d,\"hops\":%d,\
        \"protocol\":\"%s\",\"seed\":%d,\"signatures\":%d,\
        \"uniform_signatures\":%d,\"commits\":%d,\"aborts\":%d,\"stuck\":%d,\
        \"violations\":%d,\"shrink_trials\":%d,\"events\":%d,\
        \"generations\":["
       r.budget r.gen_size r.hops
       (C.protocol_flag r.protocol)
       r.seed r.signatures r.uniform_signatures r.commits r.aborts r.stuck
       r.violations r.shrink_trials r.events);
  List.iteri
    (fun i (g : gen_stat) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"gen\":%d,\"runs\":%d,\"novel\":%d}" g.gen g.runs
           g.novel))
    r.generations;
  Buffer.add_string buf "],\"corpus\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (entry_json ~hops:r.hops ~protocol:r.protocol e))
    r.corpus;
  let wall_s = float_of_int r.wall_ns /. 1e9 in
  Buffer.add_string buf
    (Printf.sprintf
       "]},\"timing\":{\"wall_ns\":%d,\"domains\":%d,\"events_per_sec\":%d}}\n"
       r.wall_ns r.domains
       (int_of_float (float_of_int r.events /. wall_s)));
  Buffer.contents buf

let corpus_to_jsonl r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_json ~hops:r.hops ~protocol:r.protocol e);
      Buffer.add_char buf '\n')
    r.corpus;
  Buffer.contents buf
