(** Mutation operators over the fault-plan AST.

    The hunt escapes uniform sampling by perturbing plans that already
    produced novel signatures. One {!mutate} call applies a single
    randomly chosen operator:

    - add / delete / retarget a link rule, or rescale its probabilities;
    - add a crash on a free pid, shift its window, or toggle
      crash-stop {e vs} crash-recovery;
    - add a partition, or shift / widen / narrow its window;
    - perturb the GST jitter;
    - splice the clauses of another corpus plan into this one.

    Every result is {!Faults.Fault_plan.normalize}d and passes
    {!Faults.Fault_plan.validate} for [nprocs]; operators whose result
    would be invalid or empty are retried a bounded number of times,
    after which a fresh {!Faults.Fault_plan.random} plan is returned.
    All randomness comes from the supplied generator, so a mutation
    chain is a pure function of its root seed. *)

val mutate :
  Sim.Rng.t ->
  nprocs:int ->
  horizon:int ->
  corpus:Faults.Fault_plan.t array ->
  Faults.Fault_plan.t ->
  Faults.Fault_plan.t
(** [mutate rng ~nprocs ~horizon ~corpus p] is a valid, normalized,
    non-empty variant of [p]. [corpus] feeds the splice operator and may
    be empty. *)
