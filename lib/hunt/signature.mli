(** Outcome fingerprints for coverage-guided adversarial search.

    A signature compresses one chaos run into a small, stable key built
    entirely from existing instrumentation:

    - the {!Xchain.Chaos.classification} (safe-commit / safe-abort /
      stuck / safety-violation);
    - the {e set} of failed safety verdicts (sorted property names);
    - a quantized blame histogram — each {!Obsv.Blame} category's share
      of the end-to-end latency bucketed into five levels (absent when
      the run has no blame path, e.g. stuck before any settlement);
    - quantized injection totals per fault kind (drop / dup / corrupt /
      partition, log-ish buckets);
    - a clause-activation profile: how many link rules, crashes,
      recoveries and partitions {e actually fired}
      ({!Faults.Injector.clause_hits}), capped at "several" so the key
      reflects behaviour rather than plan size.

    Two runs with the same signature exercised the system the same way;
    the hunt's corpus keeps one witness per signature, and the shrinker
    minimizes a plan {e subject to the signature being preserved}. The
    whole fingerprint is a pure function of a run's deterministic
    outputs, so signatures are byte-stable across replays and domain
    counts. *)

type t = {
  classification : Xchain.Chaos.classification;
  failed : string list;  (** failed verdict property names, sorted *)
  blame : int array;  (** 7 share buckets in {!Obsv.Blame.categories}
                          order, or [[||]] when no blame path exists *)
  injected : int array;  (** 4 count buckets: drop, dup, corrupt, partition *)
  clauses : int array;  (** fired-clause profile: links, crashes,
                            recoveries, partitions (each 0..2), gst (0/1) *)
  path : int;
      (** path-shape bucket ({!count_bucket} of the run's hop count):
          constant for a fixed-hops hunt, discriminating once topology
          routing mixes path lengths in one corpus *)
  breach : int;
      (** first-breach sim-time bucket from the online monitor
          ([run_result.breach_at]): 0 = never tripped, then log-decade
          buckets (≤100, ≤1k, ≤10k, beyond). Two plans breaking the same
          property at different phases of the run are distinct finds. *)
}

val of_run :
  ?causal:Obsv.Causal.t -> delta:int -> Xchain.Chaos.run_result -> t
(** Fingerprint one run. [causal] must be the recorder the run was
    executed with (its graph supplies the blame decomposition); [delta]
    is the synchrony bound splitting transit from GST wait, as in
    {!Obsv.Blame.attribute}. *)

val to_string : t -> string
(** Compact stable key, e.g. ["stuck||b-|i10010|c10110|p2|t0"]. Corpus
    files and reports key on this string. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(**/**)

val count_bucket : int -> int
val share_bucket : total:int -> int -> int
