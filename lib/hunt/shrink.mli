(** Greedy repro minimization, qcheck-style but signature-preserving.

    Given an interesting plan, the shrinker repeatedly proposes strictly
    smaller variants — delete a clause, halve a probability, halve or
    left-tighten a crash / partition window, halve the GST jitter — and
    keeps a variant iff replaying it reproduces the {e same signature}.
    "Smaller" is the lexicographic measure (clause count, total window
    span, total probability mass), which every accepted step strictly
    decreases, so the loop terminates at a fixpoint; [max_trials] is
    only a safety cap on replay count.

    A pre-pass deletes all clauses the original run never activated
    (using the per-clause counters from
    {!Faults.Injector.clause_hits}) in a single replay. *)

val shrink :
  nprocs:int ->
  horizon:int ->
  signature:string ->
  replay:(Faults.Fault_plan.t -> string) ->
  ?fired:int array ->
  ?max_trials:int ->
  Faults.Fault_plan.t ->
  Faults.Fault_plan.t * int
(** [shrink ~nprocs ~horizon ~signature ~replay p] is [(q, trials)]:
    the fixpoint plan [q] (valid, never larger than [p] in clause count
    or window span, replaying to [signature]) and the number of replays
    spent. [replay q] must run the candidate under the {e same} seed /
    hops / protocol as the original and return its signature string.
    [fired], when given, must be clause-aligned with [p]. [max_trials]
    defaults to 400. *)
