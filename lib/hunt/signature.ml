module C = Xchain.Chaos
module V = Props.Verdict
module FP = Faults.Fault_plan

type t = {
  classification : C.classification;
  failed : string list;
  blame : int array;
  injected : int array;
  clauses : int array;
  path : int;
  breach : int;
}

(* log-ish bucket: 0, 1, 2–3, 4–7, 8+ *)
let count_bucket n =
  if n <= 0 then 0 else if n = 1 then 1 else if n <= 3 then 2
  else if n <= 7 then 3
  else 4

(* share-of-total bucket: 0, (0,10%], (10,40%], (40,80%], >80% *)
let share_bucket ~total gap =
  if gap <= 0 || total <= 0 then 0
  else
    let pct = 100 * gap / total in
    if pct <= 10 then 1 else if pct <= 40 then 2 else if pct <= 80 then 3
    else 4

let cap2 n = Stdlib.min 2 n

(* first-breach sim-time, log-decade buckets: 0 = never tripped (or the
   run was unmonitored), then early / mid / late / very late *)
let time_bucket t =
  if t < 0 then 0 else if t <= 100 then 1 else if t <= 1_000 then 2
  else if t <= 10_000 then 3
  else 4

let blame_levels ?causal ~delta (r : C.run_result) =
  match causal with
  | None -> [||]
  | Some c ->
      let sink =
        if r.C.paid_node >= 0 then r.C.paid_node else r.C.settled_node
      in
      if sink <= 0 || Obsv.Causal.node_count c = 0 then [||]
      else begin
        let rep = Obsv.Blame.attribute ~delta c ~root:0 ~sink in
        Array.of_list
          (List.map
             (fun (_, gap) -> share_bucket ~total:rep.Obsv.Blame.total gap)
             rep.Obsv.Blame.by_category)
      end

(* How many clauses of each shape did anything: the plan-shape-independent
   fold of the injector's per-clause counters. Capped at 2 so the key
   space stays small ("none / one / several"), not plan-size-shaped. *)
let clause_profile (r : C.run_result) =
  let plan = r.C.plan in
  let fired = r.C.fired in
  if Array.length fired = 0 then Array.make 5 0
  else begin
    let nl = List.length plan.FP.links in
    let nc = List.length plan.FP.crashes in
    let np = List.length plan.FP.partitions in
    let count lo n pred =
      let hits = ref 0 in
      for i = lo to lo + n - 1 do
        if pred fired.(i) then incr hits
      done;
      !hits
    in
    let links_fired = count 0 nl (fun h -> h > 0) in
    let crashes_fired = count nl nc (fun h -> h >= 1) in
    let recoveries = count nl nc (fun h -> h >= 2) in
    let parts_fired = count (nl + nc) np (fun h -> h > 0) in
    let gst = if Array.length fired > nl + nc + np then fired.(nl + nc + np) else 0 in
    [|
      cap2 links_fired; cap2 crashes_fired; cap2 recoveries; cap2 parts_fired;
      (if gst > 0 then 1 else 0);
    |]
  end

let of_run ?causal ~delta (r : C.run_result) =
  {
    classification = r.C.classification;
    failed =
      List.sort String.compare
        (List.map (fun v -> v.V.property) r.C.failures);
    blame = blame_levels ?causal ~delta r;
    injected = Array.map count_bucket r.C.injected;
    clauses = clause_profile r;
    (* path-shape bucket: constant for a fixed-hops hunt, it starts
       discriminating when topology-routed runs mix path lengths *)
    path = count_bucket r.C.hops;
    breach = time_bucket r.C.breach_at;
  }

let digits a =
  String.init (Array.length a) (fun i -> Char.chr (Char.code '0' + a.(i)))

let to_string s =
  Printf.sprintf "%s|%s|b%s|i%s|c%s|p%d|t%d"
    (C.classification_name s.classification)
    (String.concat "," s.failed)
    (if Array.length s.blame = 0 then "-" else digits s.blame)
    (digits s.injected) (digits s.clauses) s.path s.breach

let equal a b = to_string a = to_string b
let compare a b = String.compare (to_string a) (to_string b)
let pp ppf s = Fmt.string ppf (to_string s)
