open Sim
module FP = Faults.Fault_plan

(* Size caps: mutation must not grow plans without bound — the searcher
   wants *novel behaviour*, not ever-longer clause lists, and the
   shrinker's job gets harder with every surplus clause. *)
let max_links = 6
let max_partitions = 2

let clamp_pm pm = Stdlib.max 1 (Stdlib.min 1000 pm)

let endpoint rng ~nprocs =
  if Rng.bool rng then None else Some (Rng.int rng nprocs)

let fresh_link rng ~nprocs =
  let kind = Rng.int rng 3 in
  let pm = 1 + Rng.int rng 500 in
  {
    FP.src = endpoint rng ~nprocs;
    dst = endpoint rng ~nprocs;
    drop_pm = (if kind = 0 then pm else 0);
    dup_pm = (if kind = 1 then pm else 0);
    corrupt_pm = (if kind = 2 then pm else 0);
  }

let fresh_window rng ~horizon =
  let half = Stdlib.max 1 (horizon / 2) in
  let at = Rng.int rng half in
  let until_ =
    if Rng.bool rng then Some (Sim_time.add at (1 + Rng.int rng half))
    else None
  in
  (at, until_)

let fresh_crash rng ~nprocs ~horizon ~(taken : int list) =
  let free =
    List.filter (fun p -> not (List.mem p taken)) (List.init nprocs Fun.id)
  in
  match free with
  | [] -> None
  | _ ->
      let pid = List.nth free (Rng.int rng (List.length free)) in
      let at, recover_at = fresh_window rng ~horizon in
      Some { FP.pid; at; recover_at }

let fresh_partition rng ~nprocs ~horizon =
  if nprocs < 2 then None
  else begin
    let pids = Array.init nprocs Fun.id in
    Rng.shuffle rng pids;
    let cut = 1 + Rng.int rng (nprocs - 1) in
    let left = Array.to_list (Array.sub pids 0 cut) in
    let right = Array.to_list (Array.sub pids cut (nprocs - cut)) in
    let from_, until_ = fresh_window rng ~horizon in
    Some
      {
        FP.groups = [ List.sort compare left; List.sort compare right ];
        gnames = [];
        from_;
        until_;
      }
  end

(* replace element [i] of [xs] with [f x]; [f x = []] deletes it *)
let patch xs i f =
  List.concat (List.mapi (fun j x -> if j = i then f x else [ x ]) xs)

let pick_index rng xs =
  match List.length xs with 0 -> None | n -> Some (Rng.int rng n)

(* one mutation attempt; may return a plan that fails validation (the
   caller retries) *)
let step rng ~nprocs ~horizon ~(corpus : FP.t array) (p : FP.t) =
  let half = Stdlib.max 1 (horizon / 2) in
  match Rng.int rng 12 with
  | 0 ->
      (* add a link rule *)
      if List.length p.FP.links >= max_links then p
      else { p with FP.links = p.FP.links @ [ fresh_link rng ~nprocs ] }
  | 1 -> (
      (* delete one clause, uniformly over all clauses *)
      let n = FP.clause_count p in
      if n = 0 then p
      else
        let i = Rng.int rng n in
        let nl = List.length p.FP.links in
        let nc = List.length p.FP.crashes in
        let np = List.length p.FP.partitions in
        if i < nl then { p with FP.links = patch p.FP.links i (fun _ -> []) }
        else if i < nl + nc then
          { p with FP.crashes = patch p.FP.crashes (i - nl) (fun _ -> []) }
        else if i < nl + nc + np then
          {
            p with
            FP.partitions = patch p.FP.partitions (i - nl - nc) (fun _ -> []);
          }
        else { p with FP.gst_jitter = 0 })
  | 2 -> (
      (* widen or narrow a link probability *)
      match pick_index rng p.FP.links with
      | None -> p
      | Some i ->
          let scale pm =
            if pm = 0 then 0
            else
              clamp_pm
                (match Rng.int rng 3 with
                | 0 -> pm * 2
                | 1 -> Stdlib.max 1 (pm / 2)
                | _ -> pm + Rng.int_in rng ~lo:(-100) ~hi:100)
          in
          {
            p with
            FP.links =
              patch p.FP.links i (fun r ->
                  [
                    {
                      r with
                      FP.drop_pm = scale r.FP.drop_pm;
                      dup_pm = scale r.FP.dup_pm;
                      corrupt_pm = scale r.FP.corrupt_pm;
                    };
                  ]);
          })
  | 3 -> (
      (* retarget a link rule *)
      match pick_index rng p.FP.links with
      | None -> p
      | Some i ->
          {
            p with
            FP.links =
              patch p.FP.links i (fun r ->
                  [
                    {
                      r with
                      FP.src = endpoint rng ~nprocs;
                      dst = endpoint rng ~nprocs;
                    };
                  ]);
          })
  | 4 -> (
      (* add a crash schedule on a free pid *)
      let taken = List.map (fun c -> c.FP.pid) p.FP.crashes in
      match fresh_crash rng ~nprocs ~horizon ~taken with
      | None -> p
      | Some c -> { p with FP.crashes = p.FP.crashes @ [ c ] })
  | 5 -> (
      (* shift a crash window, keeping its duration *)
      match pick_index rng p.FP.crashes with
      | None -> p
      | Some i ->
          {
            p with
            FP.crashes =
              patch p.FP.crashes i (fun c ->
                  let at =
                    Stdlib.max 0
                      (c.FP.at + Rng.int_in rng ~lo:(-(half / 2)) ~hi:(half / 2))
                  in
                  let recover_at =
                    Option.map
                      (fun r -> Sim_time.add at (Sim_time.sub r c.FP.at))
                      c.FP.recover_at
                  in
                  [ { c with FP.at; recover_at } ]);
          })
  | 6 -> (
      (* toggle crash recovery: crash-stop <-> crash-recovery *)
      match pick_index rng p.FP.crashes with
      | None -> p
      | Some i ->
          {
            p with
            FP.crashes =
              patch p.FP.crashes i (fun c ->
                  let recover_at =
                    match c.FP.recover_at with
                    | Some _ -> None
                    | None -> Some (Sim_time.add c.FP.at (1 + Rng.int rng half))
                  in
                  [ { c with FP.recover_at } ]);
          })
  | 7 -> (
      (* add a partition *)
      if List.length p.FP.partitions >= max_partitions then p
      else
        match fresh_partition rng ~nprocs ~horizon with
        | None -> p
        | Some s -> { p with FP.partitions = p.FP.partitions @ [ s ] })
  | 8 -> (
      (* shift / widen / narrow a partition window *)
      match pick_index rng p.FP.partitions with
      | None -> p
      | Some i ->
          {
            p with
            FP.partitions =
              patch p.FP.partitions i (fun s ->
                  match Rng.int rng 3 with
                  | 0 ->
                      let from_ =
                        Stdlib.max 0
                          (s.FP.from_
                          + Rng.int_in rng ~lo:(-(half / 2)) ~hi:(half / 2))
                      in
                      let until_ =
                        Option.map
                          (fun u ->
                            Sim_time.add from_ (Sim_time.sub u s.FP.from_))
                          s.FP.until_
                      in
                      [ { s with FP.from_; until_ } ]
                  | 1 ->
                      (* widen: heal later (or never) *)
                      [
                        {
                          s with
                          FP.until_ =
                            (if Rng.bool rng then None
                             else
                               Some
                                 (Sim_time.add
                                    (match s.FP.until_ with
                                    | Some u -> u
                                    | None -> s.FP.from_ + half)
                                    (1 + Rng.int rng half)));
                        };
                      ]
                  | _ ->
                      (* narrow: bound an unbounded window, or halve it *)
                      let until_ =
                        match s.FP.until_ with
                        | None -> Some (s.FP.from_ + 1 + Rng.int rng half)
                        | Some u ->
                            let dur = Sim_time.sub u s.FP.from_ in
                            if dur >= 2 then Some (s.FP.from_ + (dur / 2))
                            else Some u
                      in
                      [ { s with FP.until_ } ]);
          })
  | 9 ->
      (* perturb the GST jitter *)
      { p with FP.gst_jitter = Rng.int rng 500 }
  | 10 when Array.length corpus > 0 ->
      (* splice: graft another corpus plan's clauses onto this one *)
      let other = Rng.choose rng corpus in
      let take n xs = List.filteri (fun i _ -> i < n) xs in
      let links = take max_links (p.FP.links @ other.FP.links) in
      let crashes =
        List.fold_left
          (fun acc (c : FP.crash_spec) ->
            if List.exists (fun (c' : FP.crash_spec) -> c'.FP.pid = c.FP.pid) acc
            then acc
            else acc @ [ c ])
          p.FP.crashes other.FP.crashes
      in
      let partitions =
        take max_partitions (p.FP.partitions @ other.FP.partitions)
      in
      {
        FP.links;
        crashes;
        partitions;
        gst_jitter = Stdlib.max p.FP.gst_jitter other.FP.gst_jitter;
      }
  | _ ->
      (* crossover fallback / fresh restart *)
      FP.random rng ~nprocs ~horizon

let mutate rng ~nprocs ~horizon ~corpus p =
  let rec try_ k =
    if k = 0 then FP.normalize (FP.random rng ~nprocs ~horizon)
    else begin
      let candidate = FP.normalize (step rng ~nprocs ~horizon ~corpus p) in
      if
        (not (FP.is_none candidate))
        && FP.validate candidate ~nprocs = Ok ()
      then candidate
      else try_ (k - 1)
    end
  in
  try_ 8
