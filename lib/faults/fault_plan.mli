(** Declarative fault plans.

    A plan is pure data: which links misbehave (drop / duplicate / corrupt,
    with per-mille probabilities), which processes crash and when they
    reboot, which groups of processes are partitioned from each other and
    for how long, and how far the network's GST is jittered. The
    {!Injector} turns a plan plus a seed into concrete, deterministic
    per-send decisions; a plan on its own never rolls a die.

    Plans serialize to a compact one-line grammar, so every chaos run can
    print an exact repro ([--seed N --plan '…']) and every repro replays
    bit-for-bit:

    {v
    drop *>3 0.2; dup 1>* 0.05; corrupt *>* 0.01;
    crash 2@500+800; part 0,1|2,3@200+400; gst+50
    v}

    Clause forms ([SRC]/[DST] are pids or [*], [P] a probability in
    [0..1], times in ticks):

    - [drop SRC>DST P], [dup SRC>DST P], [corrupt SRC>DST P] — per-send
      fault probabilities on matching links; several matching rules
      combine by taking the maximum per kind.
    - [crash PID@AT] / [crash PID@AT+DUR] — the process goes down at [AT];
      with [+DUR] it reboots at [AT+DUR], otherwise it stays down.
    - [part G1|G2|…@AT] / [part …@AT+DUR] — two or more [|]-separated
      groups; while active, sends between {e different} listed groups are
      dropped (pids in no group are unaffected). Each group is a
      comma-separated list of members, where a member is a pid or an
      inclusive range [LO-HI] ([part 0-2|3-5@9] names six pids). A group
      may carry a label, [NAME:MEMBERS] ([part wing_a:0,1|wing_b:2,3@9]);
      names are [[A-Za-z][A-Za-z0-9_]*], distinct within a clause, and
      either every group is named or none is. Ranges are parse-time
      sugar; names survive the round-trip.
    - [gst+J] — adds [J] ticks to a partially-synchronous network's GST. *)

type link_rule = {
  src : int option;  (** [None] matches any sender *)
  dst : int option;  (** [None] matches any receiver *)
  drop_pm : int;  (** drop probability, per mille (0–1000) *)
  dup_pm : int;  (** duplication probability, per mille *)
  corrupt_pm : int;  (** corruption probability, per mille, per copy *)
}

type crash_spec = {
  pid : int;
  at : Sim.Sim_time.t;
  recover_at : Sim.Sim_time.t option;  (** [None]: down for good *)
}

type partition_spec = {
  groups : int list list;
  gnames : string option list;
      (** optional labels, parallel to [groups]: either [[]] (no group
          named — the canonical form of an unnamed clause) or one entry
          per group. Purely descriptive; never affects semantics. *)
  from_ : Sim.Sim_time.t;
  until_ : Sim.Sim_time.t option;  (** [None]: never heals *)
}

type t = {
  links : link_rule list;
  crashes : crash_spec list;
  partitions : partition_spec list;
  gst_jitter : Sim.Sim_time.t;
}

val none : t
(** The empty plan: reliable channels, no crashes, no partitions. *)

val is_none : t -> bool

val clause_count : t -> int
(** Number of clauses the plan would print: link rules + crashes +
    partitions + one for a positive GST jitter. The per-clause activation
    counters of {!Injector.clause_hits} are indexed in that order. *)

val normalize : t -> t
(** The canonical form the grammar round-trips through: every link rule
    carries exactly one nonzero kind (a combined rule splits into one rule
    per kind, in drop/dup/corrupt order), all-zero rules are dropped, and
    a non-positive GST jitter becomes 0. For any plan that passes
    {!validate}, [of_string (to_string p) = Ok (normalize p)];
    [normalize] is idempotent and never changes injection semantics. *)

val validate : t -> nprocs:int -> (unit, string) result
(** Structural sanity against a concrete process count: pids in range, at
    most one crash per pid, probabilities within [0..1000] and not all
    zero within a rule, non-negative times and jitter, recovery strictly
    after crash, partition heal strictly after start (no zero-duration
    windows), partition groups disjoint and non-empty. *)

val to_string : t -> string
(** The one-line grammar above; [of_string (to_string p)] = [Ok p] up to
    clause order for {!normalize}d plans (and [Ok (normalize p)] in
    general). The empty plan prints as ["none"]. *)

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit

val random : Sim.Rng.t -> nprocs:int -> horizon:Sim.Sim_time.t -> t
(** A random plausible plan for a system of [nprocs] processes whose
    interesting behaviour happens within [horizon] ticks: up to a few link
    rules (moderate probabilities), up to two crash–recovery schedules,
    at most one partition (two blocks below six processes; two to three
    blocks, sometimes named, from six up), occasional GST jitter.
    Deterministic in the generator state. *)
