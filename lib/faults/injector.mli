(** Deterministic fault-plan interpreter.

    An injector owns a private RNG stream (split from its seed) and turns a
    {!Fault_plan.t} into concrete per-send decisions: which sends are
    dropped, duplicated or corrupted ({!tamper}, plugged into
    {!Sim.Network.create}), and which processes crash and reboot
    ({!schedule_crashes}, applied to an engine before [run]). The same
    (plan, seed) pair always produces the same fault schedule, so every
    chaos failure replays exactly from its printed repro line.

    Injections are counted in [xchain_faults_injected_total{kind=…}] with
    [kind] one of [drop], [duplicate], [corrupt] or [partition]. *)

type t

val create : ?metrics:Obsv.Metrics.t -> plan:Fault_plan.t -> seed:int -> unit -> t
(** [metrics] defaults to {!Obsv.Metrics.default}. The injector's random
    stream is derived from [seed] alone — independent of the engine's and
    network's streams, so adding faults does not perturb the underlying
    schedule. *)

val plan : t -> Fault_plan.t

val tamper : t -> Sim.Network.tamper
(** The per-send fate decision. Active partitions take priority: a send
    between different groups of an active partition is dropped outright
    (counted as [kind="partition"]), before any link rule rolls. Link
    rules then combine by max per kind; corruption is rolled per copy. *)

val schedule_crashes : t -> ('msg, 'obs) Sim.Engine.t -> unit
(** Apply the plan's crash–recovery schedules via
    {!Sim.Engine.schedule_crash}. Call after [add_process], before [run]. *)

val jittered_model : t -> Sim.Network.model -> Sim.Network.model
(** Add the plan's GST jitter to a partially-synchronous model's GST;
    other models are returned unchanged. *)

(** {1 Per-clause activation telemetry}

    Beyond the per-kind metric counters, the injector tracks which plan
    {e clauses} actually did anything during a run — the coverage signal
    the adversarial hunt ({!Hunt.Signature}) fingerprints runs with, and
    what lets the shrinker discard never-fired clauses first. *)

val kind_counts : t -> int array
(** Injection totals as [[| drops; duplicates; corruptions; partition
    suppressions |]] (a fresh array; the injector keeps counting). *)

val clause_hits : t -> end_time:Sim.Sim_time.t -> int array
(** One slot per plan clause, in {!Fault_plan.clause_count} order (link
    rules, then crashes, then partitions, then the GST clause if
    present). Link and partition slots count injections attributed to the
    clause — a fault of some kind is charged to the {e first} matching
    rule with the maximal probability of that kind, and a partition
    suppression to the first separating active spec. A crash slot is 1
    once the crash time has been reached by [end_time], 2 once the
    recovery has too; the GST slot is 1 iff the jitter was applied to a
    partially-synchronous model. Deterministic for a given (plan, seed,
    schedule). *)
