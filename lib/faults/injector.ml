open Sim

type t = {
  plan : Fault_plan.t;
  rng : Rng.t;
  link_hits : int array;  (** injections attributed per link rule *)
  part_hits : int array;  (** sends suppressed per partition spec *)
  kind_hits : int array;  (** drop / dup / corrupt / partition totals *)
  mutable gst_applied : bool;
  m_drop : Obsv.Metrics.counter;
  m_dup : Obsv.Metrics.counter;
  m_corrupt : Obsv.Metrics.counter;
  m_partition : Obsv.Metrics.counter;
}

let create ?(metrics = Obsv.Metrics.default) ~plan ~seed () =
  let help = "Faults injected into the network by the active fault plan" in
  let kind k =
    Obsv.Metrics.counter metrics ~help ~labels:[ ("kind", k) ]
      "xchain_faults_injected_total"
  in
  {
    plan;
    rng = Rng.split (Rng.create ~seed);
    link_hits = Array.make (List.length plan.Fault_plan.links) 0;
    part_hits = Array.make (List.length plan.Fault_plan.partitions) 0;
    kind_hits = Array.make 4 0;
    gst_applied = false;
    m_drop = kind "drop";
    m_dup = kind "duplicate";
    m_corrupt = kind "corrupt";
    m_partition = kind "partition";
  }

let plan t = t.plan

(* Does an active partition separate src from dst at [now]? A pid absent
   from every group of a spec is unaffected by that spec. The index of
   the first separating spec is the clause charged with the suppression. *)
let partition_index plan ~now ~src ~dst =
  let rec go i = function
    | [] -> None
    | (s : Fault_plan.partition_spec) :: rest ->
        let active =
          Sim_time.(s.from_ <= now)
          && match s.until_ with None -> true | Some u -> Sim_time.(now < u)
        in
        let separates =
          active
          &&
          let group_of pid =
            let rec look k = function
              | [] -> None
              | g :: gs -> if List.mem pid g then Some k else look (k + 1) gs
            in
            look 0 s.groups
          in
          match (group_of src, group_of dst) with
          | Some a, Some b -> a <> b
          | _ -> false
        in
        if separates then Some i else go (i + 1) rest
  in
  go 0 plan.Fault_plan.partitions

(* Max per-kind probabilities over all rules matching (src, dst), plus the
   index of the first rule achieving each max — the clause an injection of
   that kind is attributed to. *)
let link_pms plan ~src ~dst =
  let rec go i (d, di, u, ui, c, ci) = function
    | [] -> (d, di, u, ui, c, ci)
    | (r : Fault_plan.link_rule) :: rest ->
        let m side pid = match side with None -> true | Some p -> p = pid in
        let acc =
          if m r.src src && m r.dst dst then begin
            let pick cur curi pm = if pm > cur then (pm, i) else (cur, curi) in
            let d, di = pick d di r.drop_pm in
            let u, ui = pick u ui r.dup_pm in
            let c, ci = pick c ci r.corrupt_pm in
            (d, di, u, ui, c, ci)
          end
          else (d, di, u, ui, c, ci)
        in
        go (i + 1) acc rest
  in
  go 0 (0, -1, 0, -1, 0, -1) plan.Fault_plan.links

let charge_link t ~kind ~rule =
  if rule >= 0 then t.link_hits.(rule) <- t.link_hits.(rule) + 1;
  t.kind_hits.(kind) <- t.kind_hits.(kind) + 1

let tamper t : Network.tamper =
 fun ~send_time ~src ~dst ~tag:_ ->
  match partition_index t.plan ~now:send_time ~src ~dst with
  | Some i ->
      Obsv.Metrics.inc t.m_partition;
      t.part_hits.(i) <- t.part_hits.(i) + 1;
      t.kind_hits.(3) <- t.kind_hits.(3) + 1;
      []
  | None ->
      let drop_pm, drop_i, dup_pm, dup_i, corrupt_pm, corrupt_i =
        link_pms t.plan ~src ~dst
      in
      let roll pm = pm > 0 && Rng.int t.rng 1000 < pm in
      if roll drop_pm then begin
        Obsv.Metrics.inc t.m_drop;
        charge_link t ~kind:0 ~rule:drop_i;
        []
      end
      else begin
        let ncopies =
          if roll dup_pm then begin
            Obsv.Metrics.inc t.m_dup;
            charge_link t ~kind:1 ~rule:dup_i;
            2
          end
          else 1
        in
        List.init ncopies (fun _ ->
            if roll corrupt_pm then begin
              Obsv.Metrics.inc t.m_corrupt;
              charge_link t ~kind:2 ~rule:corrupt_i;
              Network.Corrupted
            end
            else Network.Intact)
      end

let schedule_crashes t engine =
  List.iter
    (fun (c : Fault_plan.crash_spec) ->
      Engine.schedule_crash engine ~pid:c.pid ~at:c.at ?recover_at:c.recover_at
        ())
    t.plan.Fault_plan.crashes

let jittered_model t = function
  | Network.Partially_synchronous { gst; delta }
    when t.plan.Fault_plan.gst_jitter > 0 ->
      t.gst_applied <- true;
      Network.Partially_synchronous
        { gst = Sim_time.add gst t.plan.Fault_plan.gst_jitter; delta }
  | m -> m

let kind_counts t = Array.copy t.kind_hits

let clause_hits t ~end_time =
  let crash (c : Fault_plan.crash_spec) =
    (if Sim_time.(c.at <= end_time) then 1 else 0)
    +
    match c.recover_at with
    | Some r when Sim_time.(r <= end_time) -> 1
    | _ -> 0
  in
  Array.concat
    [
      Array.copy t.link_hits;
      Array.of_list (List.map crash t.plan.Fault_plan.crashes);
      Array.copy t.part_hits;
      (if t.plan.Fault_plan.gst_jitter > 0 then
         [| (if t.gst_applied then 1 else 0) |]
       else [||]);
    ]
