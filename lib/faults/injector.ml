open Sim

type t = {
  plan : Fault_plan.t;
  rng : Rng.t;
  m_drop : Obsv.Metrics.counter;
  m_dup : Obsv.Metrics.counter;
  m_corrupt : Obsv.Metrics.counter;
  m_partition : Obsv.Metrics.counter;
}

let create ?(metrics = Obsv.Metrics.default) ~plan ~seed () =
  let help = "Faults injected into the network by the active fault plan" in
  let kind k =
    Obsv.Metrics.counter metrics ~help ~labels:[ ("kind", k) ]
      "xchain_faults_injected_total"
  in
  {
    plan;
    rng = Rng.split (Rng.create ~seed);
    m_drop = kind "drop";
    m_dup = kind "duplicate";
    m_corrupt = kind "corrupt";
    m_partition = kind "partition";
  }

let plan t = t.plan

(* Does an active partition separate src from dst at [now]? A pid absent
   from every group of a spec is unaffected by that spec. *)
let partitioned plan ~now ~src ~dst =
  List.exists
    (fun (s : Fault_plan.partition_spec) ->
      let active =
        Sim_time.(s.from_ <= now)
        && match s.until_ with None -> true | Some u -> Sim_time.(now < u)
      in
      active
      &&
      let group_of pid =
        let rec go i = function
          | [] -> None
          | g :: rest -> if List.mem pid g then Some i else go (i + 1) rest
        in
        go 0 s.groups
      in
      match (group_of src, group_of dst) with
      | Some a, Some b -> a <> b
      | _ -> false)
    plan.Fault_plan.partitions

(* Max per-kind probabilities over all rules matching (src, dst). *)
let link_pms plan ~src ~dst =
  List.fold_left
    (fun (drop, dup, corrupt) (r : Fault_plan.link_rule) ->
      let m side pid =
        match side with None -> true | Some p -> p = pid
      in
      if m r.src src && m r.dst dst then
        ( Stdlib.max drop r.drop_pm,
          Stdlib.max dup r.dup_pm,
          Stdlib.max corrupt r.corrupt_pm )
      else (drop, dup, corrupt))
    (0, 0, 0) plan.Fault_plan.links

let tamper t : Network.tamper =
 fun ~send_time ~src ~dst ~tag:_ ->
  if partitioned t.plan ~now:send_time ~src ~dst then begin
    Obsv.Metrics.inc t.m_partition;
    []
  end
  else begin
    let drop_pm, dup_pm, corrupt_pm = link_pms t.plan ~src ~dst in
    let roll pm = pm > 0 && Rng.int t.rng 1000 < pm in
    if roll drop_pm then begin
      Obsv.Metrics.inc t.m_drop;
      []
    end
    else begin
      let ncopies =
        if roll dup_pm then begin
          Obsv.Metrics.inc t.m_dup;
          2
        end
        else 1
      in
      List.init ncopies (fun _ ->
          if roll corrupt_pm then begin
            Obsv.Metrics.inc t.m_corrupt;
            Network.Corrupted
          end
          else Network.Intact)
    end
  end

let schedule_crashes t engine =
  List.iter
    (fun (c : Fault_plan.crash_spec) ->
      Engine.schedule_crash engine ~pid:c.pid ~at:c.at ?recover_at:c.recover_at
        ())
    t.plan.Fault_plan.crashes

let jittered_model t = function
  | Network.Partially_synchronous { gst; delta }
    when t.plan.Fault_plan.gst_jitter > 0 ->
      Network.Partially_synchronous
        { gst = Sim_time.add gst t.plan.Fault_plan.gst_jitter; delta }
  | m -> m
