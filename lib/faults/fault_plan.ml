open Sim

type link_rule = {
  src : int option;
  dst : int option;
  drop_pm : int;
  dup_pm : int;
  corrupt_pm : int;
}

type crash_spec = {
  pid : int;
  at : Sim_time.t;
  recover_at : Sim_time.t option;
}

type partition_spec = {
  groups : int list list;
  gnames : string option list;
  from_ : Sim_time.t;
  until_ : Sim_time.t option;
}

type t = {
  links : link_rule list;
  crashes : crash_spec list;
  partitions : partition_spec list;
  gst_jitter : Sim_time.t;
}

let none = { links = []; crashes = []; partitions = []; gst_jitter = 0 }

let is_none p =
  p.links = [] && p.crashes = [] && p.partitions = [] && p.gst_jitter = 0

let clause_count p =
  List.length p.links + List.length p.crashes + List.length p.partitions
  + if p.gst_jitter > 0 then 1 else 0

(* The canonical form [of_string (to_string p)] lands on: every link rule
   carries exactly one nonzero kind (a combined rule prints as several
   clauses, which parse back as separate rules), no-op rules vanish, a
   non-positive jitter is the absent clause, and a partition whose groups
   are all unnamed carries [gnames = []] (an all-[None] list prints
   identically, so it parses back to the empty list). *)
let normalize p =
  let partitions =
    List.map
      (fun (s : partition_spec) ->
        if List.for_all (( = ) None) s.gnames then { s with gnames = [] }
        else s)
      p.partitions
  in
  let p = { p with partitions } in
  let links =
    List.concat_map
      (fun (r : link_rule) ->
        let one ~drop ~dup ~corrupt pm =
          if pm <= 0 then []
          else
            [
              {
                src = r.src;
                dst = r.dst;
                drop_pm = (if drop then pm else 0);
                dup_pm = (if dup then pm else 0);
                corrupt_pm = (if corrupt then pm else 0);
              };
            ]
        in
        one ~drop:true ~dup:false ~corrupt:false r.drop_pm
        @ one ~drop:false ~dup:true ~corrupt:false r.dup_pm
        @ one ~drop:false ~dup:false ~corrupt:true r.corrupt_pm)
      p.links
  in
  { p with links; gst_jitter = Stdlib.max 0 p.gst_jitter }

(* ------------------------------ validate ------------------------------ *)

(* a group name must not be mistakable for a member list or a window:
   leading letter, then letters / digits / underscores *)
let valid_group_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

let validate p ~nprocs =
  let ( let* ) = Result.bind in
  let err fmt = Fmt.kstr Result.error fmt in
  let check_pid what pid =
    if pid < 0 || pid >= nprocs then
      err "%s: pid %d out of range (0..%d)" what pid (nprocs - 1)
    else Ok ()
  in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
        let* () = f x in
        each f rest
  in
  let* () =
    each
      (fun r ->
        let pm what v =
          if v < 0 || v > 1000 then
            err "link rule: %s probability %d out of [0, 1000] per mille" what v
          else Ok ()
        in
        let* () = pm "drop" r.drop_pm in
        let* () = pm "dup" r.dup_pm in
        let* () = pm "corrupt" r.corrupt_pm in
        let* () =
          if r.drop_pm = 0 && r.dup_pm = 0 && r.corrupt_pm = 0 then
            err
              "link rule: all probabilities zero (degenerate clause with no \
               effect)"
          else Ok ()
        in
        let* () =
          match r.src with Some s -> check_pid "link rule src" s | None -> Ok ()
        in
        match r.dst with Some d -> check_pid "link rule dst" d | None -> Ok ())
      p.links
  in
  let* () =
    each
      (fun (c : crash_spec) ->
        let* () = check_pid "crash" c.pid in
        let* () =
          if Sim_time.(c.at < zero) then
            err "crash %d: negative crash time %a" c.pid Sim_time.pp c.at
          else Ok ()
        in
        match c.recover_at with
        | Some r when Sim_time.(r <= c.at) ->
            err
              "crash %d: recovery at %a not after crash at %a (zero-duration \
               outage)"
              c.pid Sim_time.pp r Sim_time.pp c.at
        | _ -> Ok ())
      p.crashes
  in
  let* () =
    let seen = Hashtbl.create 8 in
    each
      (fun (c : crash_spec) ->
        if Hashtbl.mem seen c.pid then
          err "crash %d: at most one crash schedule per pid" c.pid
        else begin
          Hashtbl.add seen c.pid ();
          Ok ()
        end)
      p.crashes
  in
  let* () =
    each
      (fun (s : partition_spec) ->
      let* () =
        if List.length s.groups < 2 then
          err "partition: needs at least two groups"
        else Ok ()
      in
      let* () =
        each
          (fun g ->
            if g = [] then err "partition: empty group"
            else each (check_pid "partition") g)
          s.groups
      in
      let* () =
        let seen = Hashtbl.create 8 in
        each
          (fun pid ->
            if Hashtbl.mem seen pid then
              err "partition: pid %d in two groups" pid
            else begin
              Hashtbl.add seen pid ();
              Ok ()
            end)
          (List.concat s.groups)
      in
      let* () =
        if s.gnames <> [] && List.length s.gnames <> List.length s.groups then
          err "partition: %d names for %d groups" (List.length s.gnames)
            (List.length s.groups)
        else Ok ()
      in
      let* () =
        if s.gnames <> [] && List.exists (( = ) None) s.gnames then
          err "partition: either every group is named or none is"
        else Ok ()
      in
      let* () =
        each
          (function
            | None -> Ok ()
            | Some n ->
                if valid_group_name n then Ok ()
                else err "partition: bad group name %S" n)
          s.gnames
      in
      let* () =
        let seen = Hashtbl.create 4 in
        each
          (function
            | None -> Ok ()
            | Some n ->
                if Hashtbl.mem seen n then
                  err "partition: group name %S used twice" n
                else begin
                  Hashtbl.add seen n ();
                  Ok ()
                end)
          s.gnames
      in
      let* () =
        if Sim_time.(s.from_ < zero) then
          err "partition: negative start time %a" Sim_time.pp s.from_
        else Ok ()
      in
      match s.until_ with
      | Some u when Sim_time.(u <= s.from_) ->
          err
            "partition: heal at %a not after start at %a (zero-duration \
             window)"
            Sim_time.pp u Sim_time.pp s.from_
      | _ -> Ok ())
      p.partitions
  in
  if Sim_time.(p.gst_jitter < zero) then
    err "gst jitter: negative (%a)" Sim_time.pp p.gst_jitter
  else Ok ()

(* ----------------------------- to_string ------------------------------ *)

(* probabilities print as decimals with no trailing zeros: 250‰ -> "0.25" *)
let pm_to_string pm =
  if pm = 1000 then "1"
  else if pm mod 100 = 0 then Printf.sprintf "0.%d" (pm / 100)
  else if pm mod 10 = 0 then Printf.sprintf "0.%02d" (pm / 10)
  else Printf.sprintf "0.%03d" pm

let endpoint_to_string = function None -> "*" | Some p -> string_of_int p

let to_string p =
  let buf = Buffer.create 64 in
  let clause fmt =
    Fmt.kstr
      (fun s ->
        if Buffer.length buf > 0 then Buffer.add_string buf "; ";
        Buffer.add_string buf s)
      fmt
  in
  List.iter
    (fun r ->
      let link kind pm =
        if pm > 0 then
          clause "%s %s>%s %s" kind (endpoint_to_string r.src)
            (endpoint_to_string r.dst) (pm_to_string pm)
      in
      link "drop" r.drop_pm;
      link "dup" r.dup_pm;
      link "corrupt" r.corrupt_pm)
    p.links;
  List.iter
    (fun (c : crash_spec) ->
      match c.recover_at with
      | None -> clause "crash %d@%d" c.pid c.at
      | Some r -> clause "crash %d@%d+%d" c.pid c.at (Sim_time.sub r c.at))
    p.crashes;
  List.iter
    (fun (s : partition_spec) ->
      let name_of i =
        match List.nth_opt s.gnames i with
        | Some (Some n) -> n ^ ":"
        | _ -> ""
      in
      let groups =
        String.concat "|"
          (List.mapi
             (fun i g ->
               name_of i ^ String.concat "," (List.map string_of_int g))
             s.groups)
      in
      match s.until_ with
      | None -> clause "part %s@%d" groups s.from_
      | Some u -> clause "part %s@%d+%d" groups s.from_ (Sim_time.sub u s.from_))
    p.partitions;
  if p.gst_jitter > 0 then clause "gst+%d" p.gst_jitter;
  if Buffer.length buf = 0 then "none" else Buffer.contents buf

let pp ppf p = Fmt.string ppf (to_string p)

(* ----------------------------- of_string ------------------------------ *)

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some v when v >= 0 -> Ok v
  | _ -> Fmt.kstr Result.error "%s: expected a non-negative integer, got %S" what s

let parse_endpoint what s =
  let s = String.trim s in
  if s = "*" then Ok None
  else Result.map Option.some (parse_int what s)

(* "0.25" / "1" / ".3" -> per mille *)
let parse_prob s =
  let s = String.trim s in
  let err () = Fmt.kstr Result.error "bad probability %S" s in
  match String.split_on_char '.' s with
  | [ whole ] -> (
      match int_of_string_opt whole with
      | Some 0 -> Ok 0
      | Some 1 -> Ok 1000
      | _ -> err ())
  | [ whole; frac ] -> (
      let whole = if whole = "" then "0" else whole in
      if String.length frac = 0 || String.length frac > 3 then err ()
      else
        match (int_of_string_opt whole, int_of_string_opt frac) with
        | Some w, Some f when w = 0 || (w = 1 && f = 0) ->
            let scale =
              match String.length frac with 1 -> 100 | 2 -> 10 | _ -> 1
            in
            Ok ((w * 1000) + (f * scale))
        | _ -> err ())
  | _ -> err ()

(* "AT" or "AT+DUR" -> (at, until option) *)
let parse_window what s =
  let ( let* ) = Result.bind in
  match String.split_on_char '+' s with
  | [ at ] ->
      let* at = parse_int what at in
      Ok (at, None)
  | [ at; dur ] ->
      let* at = parse_int what at in
      let* dur = parse_int what dur in
      if dur = 0 then Fmt.kstr Result.error "%s: zero duration" what
      else Ok (at, Some (Sim_time.add at dur))
  | _ -> Fmt.kstr Result.error "%s: expected AT or AT+DUR, got %S" what s

let split_fields s =
  String.split_on_char ' ' (String.trim s)
  |> List.filter (fun f -> f <> "")

let parse_clause plan clause =
  let ( let* ) = Result.bind in
  match split_fields clause with
  | [] -> Ok plan
  | [ ("drop" | "dup" | "corrupt") as kind; link; prob ] ->
      let* src, dst =
        match String.split_on_char '>' link with
        | [ s; d ] ->
            let* src = parse_endpoint (kind ^ " src") s in
            let* dst = parse_endpoint (kind ^ " dst") d in
            Ok (src, dst)
        | _ -> Fmt.kstr Result.error "%s: expected SRC>DST, got %S" kind link
      in
      let* pm = parse_prob prob in
      let rule =
        {
          src;
          dst;
          drop_pm = (if kind = "drop" then pm else 0);
          dup_pm = (if kind = "dup" then pm else 0);
          corrupt_pm = (if kind = "corrupt" then pm else 0);
        }
      in
      Ok { plan with links = plan.links @ [ rule ] }
  | [ "crash"; spec ] ->
      let* pid, window =
        match String.split_on_char '@' spec with
        | [ pid; w ] ->
            let* pid = parse_int "crash pid" pid in
            Ok (pid, w)
        | _ -> Fmt.kstr Result.error "crash: expected PID@AT[+DUR], got %S" spec
      in
      let* at, recover_at = parse_window "crash" window in
      Ok { plan with crashes = plan.crashes @ [ { pid; at; recover_at } ] }
  | [ "part"; spec ] ->
      let* groups_s, window =
        match String.split_on_char '@' spec with
        | [ g; w ] -> Ok (g, w)
        | _ ->
            Fmt.kstr Result.error "part: expected GROUPS@AT[+DUR], got %S" spec
      in
      let* named_groups =
        (* each group is [NAME:]MEMBERS; members are pids or LO-HI ranges
           (parse-only sugar — the canonical form lists every pid) *)
        let parse_member m =
          let m = String.trim m in
          match String.index_opt m '-' with
          | None -> Result.map (fun v -> [ v ]) (parse_int "part member" m)
          | Some i ->
              let* lo =
                parse_int "part range low" (String.sub m 0 i)
              in
              let* hi =
                parse_int "part range high"
                  (String.sub m (i + 1) (String.length m - i - 1))
              in
              if hi < lo then
                Fmt.kstr Result.error "part: empty range %d-%d" lo hi
              else Ok (List.init (hi - lo + 1) (fun k -> lo + k))
        in
        let parse_group g =
          let* name, members_s =
            match String.index_opt g ':' with
            | None -> Ok (None, g)
            | Some i ->
                let n = String.sub g 0 i in
                if valid_group_name n then
                  Ok (Some n, String.sub g (i + 1) (String.length g - i - 1))
                else Fmt.kstr Result.error "part: bad group name %S" n
          in
          let rec ints acc = function
            | [] -> Ok (List.rev acc)
            | m :: ms ->
                Result.bind (parse_member m) (fun vs ->
                    ints (List.rev_append vs acc) ms)
          in
          let* members = ints [] (String.split_on_char ',' members_s) in
          Ok (name, members)
        in
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | g :: rest -> (
              match parse_group g with
              | Ok ng -> go (ng :: acc) rest
              | Error _ as e -> e)
        in
        go [] (String.split_on_char '|' groups_s)
      in
      let* () =
        if List.length named_groups < 2 then
          Fmt.kstr Result.error "part: needs at least two |-separated groups"
        else Ok ()
      in
      let* from_, until_ = parse_window "part" window in
      let groups = List.map snd named_groups in
      let gnames =
        let names = List.map fst named_groups in
        if List.for_all (( = ) None) names then [] else names
      in
      Ok
        { plan with
          partitions = plan.partitions @ [ { groups; gnames; from_; until_ } ]
        }
  | [ gst ] when String.length gst > 4 && String.sub gst 0 4 = "gst+" ->
      let* j = parse_int "gst" (String.sub gst 4 (String.length gst - 4)) in
      Ok { plan with gst_jitter = j }
  | _ -> Fmt.kstr Result.error "unrecognised clause %S" (String.trim clause)

let of_string s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else
    List.fold_left
      (fun acc clause -> Result.bind acc (fun plan -> parse_clause plan clause))
      (Ok none)
      (String.split_on_char ';' s)

(* ------------------------------- random ------------------------------- *)

let random rng ~nprocs ~horizon =
  if nprocs < 1 then invalid_arg "Fault_plan.random: nprocs must be >= 1";
  let half = Stdlib.max 1 (horizon / 2) in
  let endpoint () =
    if Rng.bool rng then None else Some (Rng.int rng nprocs)
  in
  let links =
    List.init
      (Rng.int rng 4)
      (fun _ ->
        let kind = Rng.int rng 3 in
        let pm = 1 + Rng.int rng 300 in
        {
          src = endpoint ();
          dst = endpoint ();
          drop_pm = (if kind = 0 then pm else 0);
          dup_pm = (if kind = 1 then pm else 0);
          corrupt_pm = (if kind = 2 then pm else 0);
        })
  in
  let crashes =
    let n = Rng.int rng 3 in
    let pids = Array.init nprocs Fun.id in
    Rng.shuffle rng pids;
    List.init
      (Stdlib.min n nprocs)
      (fun k ->
        let at = Rng.int rng half in
        let recover_at =
          if Rng.bool rng then Some (Sim_time.add at (1 + Rng.int rng half))
          else None
        in
        { pid = pids.(k); at; recover_at })
  in
  let partitions =
    if nprocs >= 2 && Rng.int rng 3 = 0 then begin
      let pids = Array.init nprocs Fun.id in
      Rng.shuffle rng pids;
      if nprocs >= 6 then begin
        (* room for the generalized shapes: 2–3 blocks, sometimes named.
           Smaller systems keep the historical two-block draw sequence so
           seeded chaos/hunt transcripts stay byte-identical. *)
        let blocks = 2 + Rng.int rng 2 in
        let rec cuts acc lo remaining =
          if remaining = 1 then List.rev (nprocs :: acc)
          else
            let c = lo + 1 + Rng.int rng (nprocs - (remaining - 1) - lo) in
            cuts (c :: acc) c (remaining - 1)
        in
        let bounds = cuts [] 0 blocks in
        let groups =
          List.rev
            (fst
               (List.fold_left
                  (fun (acc, lo) hi ->
                    let g =
                      List.sort compare
                        (Array.to_list (Array.sub pids lo (hi - lo)))
                    in
                    (g :: acc, hi))
                  ([], 0) bounds))
        in
        let gnames =
          if Rng.bool rng then
            List.mapi (fun i _ -> Some (Printf.sprintf "g%d" i)) groups
          else []
        in
        let from_ = Rng.int rng half in
        let until_ =
          if Rng.bool rng then Some (Sim_time.add from_ (1 + Rng.int rng half))
          else None
        in
        [ { groups; gnames; from_; until_ } ]
      end
      else begin
        let cut = 1 + Rng.int rng (nprocs - 1) in
        let left = Array.to_list (Array.sub pids 0 cut) in
        let right = Array.to_list (Array.sub pids cut (nprocs - cut)) in
        let from_ = Rng.int rng half in
        let until_ =
          if Rng.bool rng then Some (Sim_time.add from_ (1 + Rng.int rng half))
          else None
        in
        [ { groups = [ List.sort compare left; List.sort compare right ];
            gnames = [];
            from_;
            until_;
          } ]
      end
    end
    else []
  in
  let gst_jitter = if Rng.int rng 4 = 0 then Rng.int rng 500 else 0 in
  { links; crashes; partitions; gst_jitter }
