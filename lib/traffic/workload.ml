type arrival =
  | Poisson of { gap : int }
  | Closed of { clients : int; think : int }
  | Burst of { size : int; every : int }
  | Ramp of { gap_hi : int; gap_lo : int }

type proto = Sync | Naive | Htlc | Weak_single | Committee | Shared | Atomic

type policy = Reserve | Optimistic

type committee = {
  c_family : string;
  c_size : int;
  c_f : int;
  c_batch : int;
  c_pipeline : int;
  c_faulty : int;
}

type t = {
  payments : int;
  hops : int;
  value : int;
  commission : int;
  arrival : arrival;
  mix : (proto * int) list;
  policy : policy;
  cap : int;
  liquidity : int;
  patience : int;
  stuck_after : int;
  drift_ppm : int;
  gst : int option;
  topology : Routing.Topology.t option;
  route : Routing.Router.strategy;
  splits : int;
  committee : committee option;
}

let default ~payments =
  {
    payments;
    hops = 2;
    value = 1000;
    commission = 10;
    arrival = Poisson { gap = 40 };
    mix = [ (Sync, 1) ];
    policy = Reserve;
    cap = 0;
    liquidity = 0;
    patience = 2_000;
    stuck_after = 0;
    drift_ppm = 10_000;
    gst = None;
    topology = None;
    route = Routing.Router.Shortest;
    splits = 1;
    committee = None;
  }

let proto_name = function
  | Sync -> "sync"
  | Naive -> "naive"
  | Htlc -> "htlc"
  | Weak_single -> "weak"
  | Committee -> "committee"
  | Shared -> "shared"
  | Atomic -> "atomic"

let proto_of_string = function
  | "sync" -> Ok Sync
  | "naive" -> Ok Naive
  | "htlc" -> Ok Htlc
  | "weak" -> Ok Weak_single
  | "committee" -> Ok Committee
  | "shared" -> Ok Shared
  | "atomic" -> Ok Atomic
  | s -> Error (Printf.sprintf "unknown protocol %S" s)

let committee_to_string c =
  Printf.sprintf "%s:%d:%d:%d:%d:%d" c.c_family c.c_size c.c_f c.c_batch
    c.c_pipeline c.c_faulty

let committee_of_string s =
  let ints l = List.map int_of_string_opt l in
  let build family = function
    | [ Some size; Some f; Some batch; Some pipeline; Some faulty ] ->
        Ok
          {
            c_family = family;
            c_size = size;
            c_f = f;
            c_batch = batch;
            c_pipeline = pipeline;
            c_faulty = faulty;
          }
    | _ -> Error "committee wants integers: family:size:f:batch:pipeline[:faulty]"
  in
  match String.split_on_char ':' s with
  | family :: rest when List.length rest = 4 ->
      build family (ints rest @ [ Some 0 ])
  | family :: rest when List.length rest = 5 -> build family (ints rest)
  | _ ->
      Error
        (Printf.sprintf "unrecognised committee spec %S (want \
                         family:size:f:batch:pipeline[:faulty])" s)

let validate_committee c =
  let err fmt = Fmt.kstr Result.error fmt in
  if not (List.mem c.c_family [ "majority"; "weighted"; "grid" ]) then
    err "committee family must be majority, weighted or grid (got %S)"
      c.c_family
  else if c.c_size < 1 then err "committee size must be >= 1"
  else if c.c_f < 0 then err "committee f must be >= 0"
  else if c.c_batch < 1 then err "committee batch must be >= 1"
  else if c.c_pipeline < 1 then err "committee pipeline must be >= 1"
  else if c.c_faulty < 0 || c.c_faulty >= c.c_size then
    err "committee faulty must be in [0, size)"
  else if c.c_faulty > c.c_f then
    err "committee faulty must not exceed the fault bound f"
  else Ok ()

let pp_proto ppf p = Fmt.string ppf (proto_name p)

let policy_name = function Reserve -> "reserve" | Optimistic -> "optimistic"

let policy_of_string = function
  | "reserve" -> Ok Reserve
  | "optimistic" -> Ok Optimistic
  | s -> Error (Printf.sprintf "unknown policy %S" s)

let arrival_to_string = function
  | Poisson { gap } -> Printf.sprintf "poisson:%d" gap
  | Closed { clients; think } -> Printf.sprintf "closed:%d:%d" clients think
  | Burst { size; every } -> Printf.sprintf "burst:%d:%d" size every
  | Ramp { gap_hi; gap_lo } -> Printf.sprintf "ramp:%d:%d" gap_hi gap_lo

let arrival_of_string s =
  match String.split_on_char ':' s with
  | [ "poisson"; g ] -> (
      match int_of_string_opt g with
      | Some gap when gap >= 1 -> Ok (Poisson { gap })
      | _ -> Error "poisson gap must be an integer >= 1")
  | [ "closed"; c; th ] -> (
      match (int_of_string_opt c, int_of_string_opt th) with
      | Some clients, Some think when clients >= 1 && think >= 0 ->
          Ok (Closed { clients; think })
      | _ -> Error "closed wants clients >= 1 and think >= 0")
  | [ "burst"; sz; ev ] -> (
      match (int_of_string_opt sz, int_of_string_opt ev) with
      | Some size, Some every when size >= 1 && every >= 1 ->
          Ok (Burst { size; every })
      | _ -> Error "burst wants size >= 1 and every >= 1")
  | [ "ramp"; hi; lo ] -> (
      match (int_of_string_opt hi, int_of_string_opt lo) with
      | Some gap_hi, Some gap_lo when gap_lo >= 1 && gap_hi >= gap_lo ->
          Ok (Ramp { gap_hi; gap_lo })
      | _ -> Error "ramp wants gap_hi >= gap_lo >= 1")
  | _ -> Error (Printf.sprintf "unrecognised arrival %S" s)

let mix_to_string mix =
  String.concat ","
    (List.map (fun (p, w) -> Printf.sprintf "%s:%d" (proto_name p) w) mix)

let mix_of_string s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match String.split_on_char ':' part with
        | [ name ] -> (
            match proto_of_string name with
            | Ok p -> go ((p, 1) :: acc) rest
            | Error e -> Error e)
        | [ name; w ] -> (
            match (proto_of_string name, int_of_string_opt w) with
            | Ok p, Some weight when weight >= 1 -> go ((p, weight) :: acc) rest
            | Ok _, _ -> Error "mix weights must be integers >= 1"
            | (Error _ as e), _ -> e)
        | _ -> Error (Printf.sprintf "bad mix entry %S" part))
  in
  match parts with [ "" ] -> Error "empty mix" | _ -> go [] parts

let validate w =
  let err fmt = Fmt.kstr Result.error fmt in
  if w.payments < 1 then err "payments must be >= 1"
  else if w.hops < 1 then err "hops must be >= 1"
  else if w.value < 1 then err "value must be >= 1"
  else if w.commission < 0 then err "commission must be >= 0"
  else if w.mix = [] then err "mix must name at least one protocol"
  else if List.exists (fun (_, weight) -> weight < 1) w.mix then
    err "mix weights must be >= 1"
  else if w.cap < 0 then err "cap must be >= 0"
  else if w.liquidity < 0 then err "liquidity must be >= 0"
  else if w.patience < 1 then err "patience must be >= 1"
  else if w.stuck_after < 0 then err "stuck must be >= 0"
  else if w.drift_ppm < 0 then err "drift must be >= 0"
  else if
    w.policy = Optimistic
    && List.exists (fun (p, _) -> p = Sync || p = Naive) w.mix
  then
    err
      "optimistic policy is incompatible with sync/naive: their escrows \
       proceed past a failed deposit (use policy=reserve)"
  else if w.drift_ppm > 0 && List.mem_assoc Naive w.mix then
    err "naive in the mix requires drift=0 (it is only correct without drift)"
  else if w.splits < 1 then err "splits must be >= 1"
  else if List.mem_assoc Shared w.mix && w.committee = None then
    err "shared in the mix requires a committee= spec"
  else if w.committee <> None && not (List.mem_assoc Shared w.mix) then
    err "committee= is only meaningful with shared in the mix"
  else if w.committee <> None && w.topology <> None then
    err "shared committee mode requires a linear workload (no topology=)"
  else if
    match w.committee with
    | Some c -> Result.is_error (validate_committee c)
    | None -> false
  then Option.get (Option.map validate_committee w.committee)
  else if w.splits > 1 && w.topology = None then
    err "splits > 1 requires a topology= graph to split across"
  else if w.topology <> None && w.policy = Optimistic then
    err
      "graph routing requires policy=reserve: admission reserves each \
       split's legs against per-edge liquidity"
  else if w.topology <> None && w.liquidity <> 0 then
    err
      "liquidity is per-edge under topology= (set it in the topology spec, \
       0 = unbounded)"
  else
    match w.gst with
    | Some g when g < 0 -> err "gst must be >= 0"
    | _ -> Ok ()

let to_string w =
  let base =
    Printf.sprintf
      "payments=%d hops=%d value=%d commission=%d arrival=%s mix=%s policy=%s \
       cap=%d liquidity=%d patience=%d stuck=%d drift=%d gst=%s"
      w.payments w.hops w.value w.commission
      (arrival_to_string w.arrival)
      (mix_to_string w.mix) (policy_name w.policy) w.cap w.liquidity w.patience
      w.stuck_after w.drift_ppm
      (match w.gst with None -> "none" | Some g -> string_of_int g)
  in
  (* graph keys only when a topology is set, so linear workloads keep their
     pre-routing spec lines byte-for-byte; likewise committee= only when a
     shared committee is configured *)
  let base =
    match w.topology with
    | None -> base
    | Some t ->
        Printf.sprintf "%s topology=%s route=%s splits=%d" base
          (Routing.Topology.to_string t)
          (Routing.Router.strategy_name w.route)
          w.splits
  in
  match w.committee with
  | None -> base
  | Some c -> Printf.sprintf "%s committee=%s" base (committee_to_string c)

let of_string s =
  let ( let* ) = Result.bind in
  let fields =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun f -> f <> "")
  in
  let parse acc field =
    let* w = acc in
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" field)
    | Some i -> (
        let key = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        let int_field set =
          match int_of_string_opt v with
          | Some n -> Ok (set n)
          | None -> Error (Printf.sprintf "%s wants an integer, got %S" key v)
        in
        (* name the offending key in sub-parser errors, so a bad value in a
           13-key spec line points at itself *)
        let keyed r =
          Result.map_error (fun e -> Printf.sprintf "%s: %s" key e) r
        in
        match key with
        | "payments" -> int_field (fun n -> { w with payments = n })
        | "hops" -> int_field (fun n -> { w with hops = n })
        | "value" -> int_field (fun n -> { w with value = n })
        | "commission" -> int_field (fun n -> { w with commission = n })
        | "cap" -> int_field (fun n -> { w with cap = n })
        | "liquidity" -> int_field (fun n -> { w with liquidity = n })
        | "patience" -> int_field (fun n -> { w with patience = n })
        | "stuck" -> int_field (fun n -> { w with stuck_after = n })
        | "drift" -> int_field (fun n -> { w with drift_ppm = n })
        | "arrival" ->
            let* a = keyed (arrival_of_string v) in
            Ok { w with arrival = a }
        | "mix" ->
            let* mix = keyed (mix_of_string v) in
            Ok { w with mix }
        | "policy" ->
            let* p = keyed (policy_of_string v) in
            Ok { w with policy = p }
        | "gst" ->
            if v = "none" then Ok { w with gst = None }
            else int_field (fun n -> { w with gst = Some n })
        | "topology" ->
            let* t = keyed (Routing.Topology.of_string v) in
            Ok { w with topology = Some t }
        | "route" ->
            let* r = keyed (Routing.Router.strategy_of_string v) in
            Ok { w with route = r }
        | "splits" -> int_field (fun n -> { w with splits = n })
        | "committee" ->
            let* c = keyed (committee_of_string v) in
            Ok { w with committee = Some c }
        | _ -> Error (Printf.sprintf "unknown workload key %S" key))
  in
  let* w = List.fold_left parse (Ok (default ~payments:1)) fields in
  let* () = validate w in
  Ok w

let assign_mix w ~seed =
  let total = List.fold_left (fun acc (_, weight) -> acc + weight) 0 w.mix in
  let rng = Sim.Rng.create ~seed:(seed + 5) in
  Array.init w.payments (fun _ ->
      let r = Sim.Rng.int rng total in
      let rec pick acc = function
        | [] -> assert false
        | (p, weight) :: rest ->
            if r < acc + weight then p else pick (acc + weight) rest
      in
      pick 0 w.mix)

let arrivals w ~seed =
  let rng = Sim.Rng.create ~seed:(seed + 3) in
  match w.arrival with
  | Closed _ -> None
  | Poisson { gap } ->
      let t = ref 0 in
      Some
        (Array.init w.payments (fun _ ->
             t := !t + 1 + Sim.Rng.exponential_ticks rng ~mean:gap;
             !t))
  | Burst { size; every } ->
      Some (Array.init w.payments (fun k -> 1 + (k / size * every)))
  | Ramp { gap_hi; gap_lo } ->
      let t = ref 0 in
      let span = Stdlib.max 1 (w.payments - 1) in
      Some
        (Array.init w.payments (fun k ->
             let mean = gap_hi - ((gap_hi - gap_lo) * k / span) in
             t := !t + 1 + Sim.Rng.exponential_ticks rng ~mean;
             !t))

let pp ppf w = Fmt.string ppf (to_string w)
