open Sim
open Protocols

type outcome = Committed | Aborted | Rejected | Stuck | Violated

let outcome_name = function
  | Committed -> "committed"
  | Aborted -> "aborted"
  | Rejected -> "rejected"
  | Stuck -> "stuck"
  | Violated -> "violated"

type violation = { payment : int; property : string; detail : string }

type report = {
  workload : Workload.t;
  seed : int;
  plan : string;
  status : string;
  admitted : int;
  committed : int;
  aborted : int;
  rejected : int;
  stuck : int;
  violated : int;
  violations : violation list;
  liquidity_rejections : int;
  conservation_ok : bool;
  latency_p50 : int;
  latency_p95 : int;
  latency_p99 : int;
  latency_max : int;
  makespan : int;
  throughput_cpm : int;
  messages : int;
  max_in_flight : int;
  trace_dropped : int;
  by_protocol : (string * int * int) list;
  blame : Obsv.Blame.agg option;
  blame_reports : (int * Obsv.Blame.report) list;
  events : int;
  wall_ns : int;
}

(* Shared model parameters for every payment in a load run; per-protocol
   windows are derived from these exactly as Runner does. *)
let delta = 100
let sigma = 10
let margin = 5

(* Auxiliary (TM/notary) processes per protocol. The committee runs with
   f = 1, i.e. 3f+1 = 4 notaries — enough to exercise consensus without
   quadrupling the pid space. *)
let aux_count = function
  | Workload.Sync | Workload.Naive | Workload.Htlc -> 0
  | Workload.Weak_single | Workload.Atomic -> 1
  | Workload.Committee -> 4

let block_size ~hops proto = (2 * hops) + 1 + aux_count proto

let weak_cfg = Weak_protocol.default_config

let committee_cfg =
  { Weak_protocol.default_config with tm = Weak_protocol.Committee { f = 1 } }

let params_for (w : Workload.t) proto =
  let drift = match proto with Workload.Naive -> 0 | _ -> w.drift_ppm in
  Params.derive
    { Params.hops = w.hops; delta; sigma; drift_ppm = drift; margin }

(* ------------------------------------------------------------------ *)

type pay = {
  proto : Workload.proto;
  mutable arrived_at : int;
  mutable admitted_at : int;
  mutable settled_at : int;  (** every customer has Terminated *)
  mutable paid_at : int;  (** first Released to Bob *)
  mutable closed : bool;  (** scheduler stopped tracking it *)
  mutable marked : outcome option;  (** Rejected/Stuck, decided in-run *)
  flows : int array;  (** net ledger flow per customer index *)
  terms : bool array;
  mutable term_count : int;
  mutable alice_cert : bool;
  mutable bob_cert_issued : bool;
  mutable rejections : (int * string) list;
  legs_reserved : bool array;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = ((q * n) + 99) / 100 in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let is_liquidity_rejection what =
  (* Book.pp_error Insufficient_funds, wrapped by the escrows' "deposit: "
     prefix; Unknown_account prints "deposit: unknown account …" and so
     stays a real violation. *)
  let prefix = "deposit: account" in
  String.length what >= String.length prefix
  && String.sub what 0 (String.length prefix) = prefix

let run ?(plan = Faults.Fault_plan.none) ?(trace_capacity = 4096) ?causal ?prof
    ~(workload : Workload.t) ~seed () =
  let wall_t0 = Fleet.now_ns () in
  let w = workload in
  (match Workload.validate w with
  | Ok () -> ()
  | Error e -> invalid_arg ("Load.run: " ^ e));
  let hops = w.hops in
  let protos = Workload.assign_mix w ~seed in
  let arrivals = Workload.arrivals w ~seed in
  let stride =
    List.fold_left (fun acc (p, _) -> max acc (block_size ~hops p)) 0 w.mix
  in
  (* Fault plans address hosts: logical pids 0 .. stride-1, applied to
     every payment block (one crashed escrow host is down for everyone). *)
  (match Faults.Fault_plan.validate plan ~nprocs:stride with
  | Ok () -> ()
  | Error e -> invalid_arg ("Load.run: bad fault plan: " ^ e));
  let topo = Topology.create ~hops in
  (* Shared ledgers: books.(i) is escrow host e_i's book; customer c_i's
     funding there is what all payments contend for. *)
  let amounts =
    Array.init hops (fun i -> w.value + (w.commission * (hops - 1 - i)))
  in
  let liquidity_units = if w.liquidity = 0 then w.payments else w.liquidity in
  let books =
    Array.init hops (fun i ->
        let b = Ledger.Book.create ~currency:(Printf.sprintf "cur%d" i) in
        Ledger.Book.open_account b ~owner:(Topology.customer topo i)
          ~balance:(liquidity_units * amounts.(i));
        Ledger.Book.open_account b
          ~owner:(Topology.customer topo (i + 1))
          ~balance:0;
        Ledger.Book.open_account b ~owner:(Topology.escrow topo i) ~balance:0;
        b)
  in
  let envs =
    Array.init w.payments (fun k ->
        Env.make ~topo ~params:(params_for w protos.(k)) ~payment:k
          ~value:w.value ~commission:w.commission ~seed:(seed + 101 + k)
          ~books ())
  in
  (* A protocol's settle horizon, for the derived stuck deadline. Scratch
     envs (private books) only feed window derivation. *)
  let proto_horizon proto =
    match proto with
    | Workload.Sync | Workload.Naive ->
        (params_for w proto).Params.horizon
    | Workload.Htlc ->
        let env0 =
          Env.make ~topo ~params:(params_for w proto) ~value:w.value
            ~commission:w.commission ~seed:(seed + 9991) ()
        in
        Htlc_protocol.window_of env0 (Htlc_protocol.default_config env0) 0
    | Workload.Weak_single | Workload.Committee -> weak_cfg.patience
    | Workload.Atomic -> Atomic_protocol.default_config.deadline
  in
  let gst_slack = match w.gst with Some g -> 2 * g | None -> 0 in
  let stuck_eff =
    if w.stuck_after > 0 then w.stuck_after
    else
      let base =
        List.fold_left (fun acc (p, _) -> max acc (proto_horizon p)) 0 w.mix
      in
      (* ×4 absorbs clock drift and queueing inside the protocol windows *)
      (4 * base) + (20 * delta) + gst_slack
  in
  let horizon =
    let last_arrival =
      match arrivals with
      | Some arr -> arr.(Array.length arr - 1)
      | None -> (
          match w.arrival with
          | Workload.Closed { clients; think } ->
              let rounds = (w.payments + clients - 1) / clients in
              rounds * (w.patience + stuck_eff + think + 1)
          | _ -> 0)
    in
    last_arrival + w.patience + (2 * stuck_eff) + (20 * delta) + gst_slack
  in
  let max_events = (1000 * w.payments) + 100_000 in
  (* --- network: model + fault injection, control traffic exempt --- *)
  let injector =
    if Faults.Fault_plan.is_none plan then None
    else Some (Faults.Injector.create ~plan ~seed:(seed + 47) ())
  in
  let model =
    let base =
      match w.gst with
      | None -> Network.Synchronous { delta }
      | Some gst -> Network.Partially_synchronous { gst; delta }
    in
    match injector with
    | None -> base
    | Some inj -> Faults.Injector.jittered_model inj base
  in
  let tamper =
    Option.map
      (fun inj ->
        let tam = Faults.Injector.tamper inj in
        fun ~send_time ~src ~dst ~tag ->
          if src = 0 || dst = 0 then [ Network.Intact ]
          else
            tam ~send_time
              ~src:((src - 1) mod stride)
              ~dst:((dst - 1) mod stride)
              ~tag)
      injector
  in
  let adversary ~send_time:_ ~src:_ ~dst:_ ~tag ~bounds =
    if tag = "start" || tag = "traffic-done" then Some bounds.Network.lo
    else None
  in
  let network =
    Network.create ~adversary ?tamper ~link_stats:false model
      (Rng.create ~seed:(seed + 17))
  in
  let trace_cap = if trace_capacity = 0 then None else Some trace_capacity in
  let engine =
    Engine.create ~tag_of:Msg.tag ~network ~sigma ?trace_capacity:trace_cap
      ?causal ?prof ~seed ()
  in
  (* --- per-payment accounting state, fed by a trace hook --- *)
  let pays =
    Array.init w.payments (fun k ->
        {
          proto = protos.(k);
          arrived_at = -1;
          admitted_at = -1;
          settled_at = -1;
          paid_at = -1;
          closed = false;
          marked = None;
          flows = Array.make (hops + 1) 0;
          terms = Array.make (hops + 1) false;
          term_count = 0;
          alice_cert = false;
          bob_cert_issued = false;
          rejections = [];
          legs_reserved = Array.make hops false;
        })
  in
  let reserved = Array.make hops 0 in
  let messages = ref 0 in
  (* causal anchors per payment: the arrival note (blame root) and the
     deliver that paid Bob (blame sink), captured from the dispatch context *)
  let roots = Array.make w.payments (-1) in
  let paid_nodes = Array.make w.payments (-1) in
  let esc_idx lp =
    if lp > hops && lp <= 2 * hops then Some (lp - hops - 1) else None
  in
  Trace.on_record (Engine.trace engine) (fun entry ->
      match entry with
      | Trace.Sent _ -> incr messages
      | Trace.Observed { t; pid; obs } when pid >= 1 ->
          let k = (pid - 1) / stride in
          let p = pays.(k) in
          (match obs with
          | Obs.Deposited { escrow; depositor; amount; _ } -> (
              if depositor >= 0 && depositor <= hops then
                p.flows.(depositor) <- p.flows.(depositor) - amount;
              match esc_idx escrow with
              | Some i when p.legs_reserved.(i) ->
                  p.legs_reserved.(i) <- false;
                  reserved.(i) <- reserved.(i) - amounts.(i)
              | _ -> ())
          | Obs.Released { to_; amount; _ } ->
              if to_ >= 0 && to_ <= hops then begin
                p.flows.(to_) <- p.flows.(to_) + amount;
                if to_ = hops && p.paid_at < 0 then begin
                  p.paid_at <- t;
                  paid_nodes.(k) <- Engine.current_node engine
                end
              end
          | Obs.Refunded { depositor; amount; _ } ->
              if depositor >= 0 && depositor <= hops then
                p.flows.(depositor) <- p.flows.(depositor) + amount
          | Obs.Cert_received
              { pid = who; kind = Obs.Chi | Obs.Chi_commit; valid = true }
            when who = 0 ->
              p.alice_cert <- true
          | Obs.Cert_issued { by; _ } when by = hops ->
              p.bob_cert_issued <- true
          | Obs.Terminated { pid = who; _ }
            when who >= 0 && who <= hops && not p.terms.(who) ->
              p.terms.(who) <- true;
              p.term_count <- p.term_count + 1;
              if p.term_count = hops + 1 && p.settled_at < 0 then
                p.settled_at <- t
          | Obs.Rejected { pid = who; what } ->
              p.rejections <- (who, what) :: p.rejections
          | _ -> ())
      | _ -> ());
  (* --- controller (pid 0): arrivals, admission, deadlines --- *)
  let queue = Queue.create () in
  let in_flight = ref 0 in
  let max_in_flight = ref 0 in
  let admitted = ref 0 in
  let arr_label k = "arr#" ^ string_of_int k in
  let pat_label k = "pat#" ^ string_of_int k in
  let stuck_label k = "stuck#" ^ string_of_int k in
  let try_admit ctx k =
    let p = pays.(k) in
    let cap_ok = w.cap = 0 || !in_flight < w.cap in
    let liq_ok =
      match w.policy with
      | Workload.Optimistic -> true
      | Workload.Reserve ->
          let ok = ref true in
          for i = 0 to hops - 1 do
            if
              Ledger.Book.balance books.(i) (Topology.customer topo i)
              - reserved.(i)
              < amounts.(i)
            then ok := false
          done;
          !ok
    in
    cap_ok && liq_ok
    && begin
         (match w.policy with
         | Workload.Reserve ->
             for i = 0 to hops - 1 do
               p.legs_reserved.(i) <- true;
               reserved.(i) <- reserved.(i) + amounts.(i)
             done
         | Workload.Optimistic -> ());
         p.admitted_at <- Engine.now engine;
         (* Queue edge from the arrival note: the gap the walk crosses here
            is exactly this payment's wait behind admission *)
         ignore
           (Engine.causal_note ctx ~after:roots.(k) ~trace:k
              ~label:("admit#" ^ string_of_int k)
              ());
         incr admitted;
         incr in_flight;
         if !in_flight > !max_in_flight then max_in_flight := !in_flight;
         let base = 1 + (k * stride) in
         for l = 0 to block_size ~hops p.proto - 1 do
           Engine.send ctx ~dst:(base + l) Msg.Start
         done;
         Engine.set_timer_after ctx ~after:stuck_eff ~label:(stuck_label k);
         Engine.cancel_timer ctx ~label:(pat_label k);
         true
       end
  in
  let drain ctx =
    let blocked = ref false in
    while (not !blocked) && not (Queue.is_empty queue) do
      let k = Queue.peek queue in
      let p = pays.(k) in
      if p.closed || p.admitted_at >= 0 then ignore (Queue.pop queue)
      else if try_admit ctx k then ignore (Queue.pop queue)
      else blocked := true
    done
  in
  let close ctx k ~release =
    let p = pays.(k) in
    if not p.closed then begin
      p.closed <- true;
      if p.admitted_at >= 0 then decr in_flight;
      if release then
        for i = 0 to hops - 1 do
          if p.legs_reserved.(i) then begin
            p.legs_reserved.(i) <- false;
            reserved.(i) <- reserved.(i) - amounts.(i)
          end
        done;
      Engine.cancel_timer ctx ~label:(stuck_label k);
      (match w.arrival with
      | Workload.Closed { clients; think } ->
          let next = k + clients in
          if next < w.payments then
            Engine.set_timer_after ctx ~after:(max 1 think)
              ~label:(arr_label next)
      | _ -> ());
      drain ctx
    end
  in
  let arrive ctx k =
    pays.(k).arrived_at <- Engine.now engine;
    roots.(k) <-
      Engine.causal_note ctx ~trace:k
        ~label:("arrive#" ^ string_of_int k)
        ();
    Queue.add k queue;
    Engine.set_timer_after ctx ~after:w.patience ~label:(pat_label k);
    drain ctx
  in
  let controller =
    {
      Engine.on_start =
        (fun ctx ->
          match arrivals with
          | Some arr ->
              Array.iteri
                (fun k t ->
                  Engine.set_timer ctx ~deadline:t ~label:(arr_label k))
                arr
          | None -> (
              match w.arrival with
              | Workload.Closed { clients; _ } ->
                  for c = 0 to min clients w.payments - 1 do
                    (* 1-tick stagger keeps first-round admission ordered *)
                    Engine.set_timer ctx ~deadline:(1 + c)
                      ~label:(arr_label c)
                  done
              | _ -> assert false));
      on_receive =
        (fun ctx ~src:_ msg ->
          match msg with
          | Msg.Traffic_done { payment = k } ->
              let p = pays.(k) in
              if (not p.closed) && p.settled_at >= 0 then
                close ctx k ~release:true
          | _ -> ());
      on_timer =
        (fun ctx ~label ->
          match String.split_on_char '#' label with
          | [ "arr"; k ] -> arrive ctx (int_of_string k)
          | [ "pat"; k ] ->
              let k = int_of_string k in
              let p = pays.(k) in
              if (not p.closed) && p.admitted_at < 0 then begin
                p.marked <- Some Rejected;
                close ctx k ~release:false
              end
          | [ "stuck"; k ] ->
              let k = int_of_string k in
              let p = pays.(k) in
              if not p.closed then
                if p.settled_at >= 0 then close ctx k ~release:true
                else begin
                  p.marked <- Some Stuck;
                  (* a stuck payment's un-deposited reservations stay
                     locked: it may still deposit later, and releasing
                     them would double-spend the collateral *)
                  close ctx k ~release:false
                end
          | _ -> ())
    }
  in
  let cpid =
    Engine.add_process engine ~clock:Clock.perfect ~label:"sched" controller
  in
  assert (cpid = 0);
  (* --- payment blocks --- *)
  let clock_rng = Rng.create ~seed:(seed + 31) in
  let wrap ~payment ~abs ~is_customer ~skew inner =
    let started = ref false in
    let reported = ref false in
    let buffered = ref [] in
    let after_inner ctx =
      if is_customer && (not !reported) && Engine.is_halted engine abs
      then begin
        reported := true;
        Engine.send_absolute ctx ~dst:0 (Msg.Traffic_done { payment })
      end
    in
    {
      Engine.on_start = (fun _ -> ());
      on_receive =
        (fun ctx ~src msg ->
          match msg with
          | Msg.Start ->
              if not !started then begin
                started := true;
                (* re-anchor the local epoch: the protocol's absolute
                   local deadlines must count from this payment's own
                   start, not from engine time 0 *)
                let num, den = Clock.rate (Engine.clock_of engine abs) in
                Engine.set_clock engine ~pid:abs
                  (Clock.create ~l0:skew ~g0:(Engine.now engine) ~num ~den
                     ());
                inner.Engine.on_start ctx;
                let pending = List.rev !buffered in
                buffered := [];
                List.iter
                  (fun (src, m) ->
                    if not (Engine.is_halted engine abs) then
                      inner.Engine.on_receive ctx ~src m)
                  pending;
                after_inner ctx
              end
          | _ ->
              if !started then begin
                inner.Engine.on_receive ctx ~src msg;
                after_inner ctx
              end
              else buffered := (src, msg) :: !buffered);
      on_timer =
        (fun ctx ~label ->
          if !started then begin
            inner.Engine.on_timer ctx ~label;
            after_inner ctx
          end);
    }
  in
  for k = 0 to w.payments - 1 do
    let env = envs.(k) in
    let inner =
      match protos.(k) with
      | Workload.Sync | Workload.Naive ->
          fun l -> fst (Anta.Executor.handlers (Sync_protocol.automaton_for env l) ())
      | Workload.Htlc ->
          let cfg = Htlc_protocol.default_config env in
          let preimage = Htlc_protocol.fresh_preimage ~seed:(seed + 57 + k) in
          fun l -> Htlc_protocol.handlers_for env cfg preimage l
      | Workload.Weak_single -> Weak_protocol.handlers_for env weak_cfg
      | Workload.Committee -> Weak_protocol.handlers_for env committee_cfg
      | Workload.Atomic -> Atomic_protocol.handlers_for env Atomic_protocol.default_config
    in
    let bs = block_size ~hops protos.(k) in
    let base = 1 + (k * stride) in
    for l = 0 to stride - 1 do
      let clock = Clock.random clock_rng ~drift_ppm:w.drift_ppm in
      let skew = Rng.int clock_rng 1001 in
      let handlers =
        if l < bs then
          wrap ~payment:k ~abs:(base + l) ~is_customer:(l <= hops) ~skew
            (inner l)
        else Engine.silent
      in
      (* profiler role labels: constant strings, interned only when the
         engine carries a profiler *)
      let label =
        if l = 0 then "alice"
        else if l < hops then "chloe"
        else if l = hops then "bob"
        else if l <= 2 * hops then "escrow"
        else if l < bs then "aux"
        else "idle"
      in
      ignore (Engine.add_process engine ~clock ~base ~label handlers)
    done
  done;
  (* host crashes expand to every payment block *)
  List.iter
    (fun (c : Faults.Fault_plan.crash_spec) ->
      for k = 0 to w.payments - 1 do
        Engine.schedule_crash engine
          ~pid:(1 + (k * stride) + c.pid)
          ~at:c.at ?recover_at:c.recover_at ()
      done)
    plan.Faults.Fault_plan.crashes;
  let status = Engine.run ~horizon ~max_events engine in
  let end_time = Engine.now engine in
  (* --- classification --- *)
  let violations = ref [] in
  let liquidity_rejections = ref 0 in
  let exposed p lp =
    let hi = if p.settled_at >= 0 then p.settled_at else end_time in
    let lo = if p.admitted_at >= 0 then p.admitted_at else 0 in
    List.exists
      (fun (c : Faults.Fault_plan.crash_spec) ->
        c.pid = lp && c.at <= hi
        && match c.recover_at with None -> true | Some r -> r >= lo)
      plan.Faults.Fault_plan.crashes
  in
  (* a customer abides unless it, or an adjacent escrow host, was crashed
     while the payment was live — mirrors chaos's non-abiding registration *)
  let abides p ci =
    (not (exposed p ci))
    && (ci = 0 || not (exposed p (hops + ci)))
    && (ci = hops || not (exposed p (hops + 1 + ci)))
  in
  let classify k =
    let p = pays.(k) in
    if p.marked = Some Rejected || p.admitted_at < 0 then Rejected
    else begin
      let viols = ref [] in
      let add property detail =
        viols := { payment = k; property; detail } :: !viols
      in
      List.iter
        (fun (who, what) ->
          let liq = is_liquidity_rejection what in
          if liq then incr liquidity_rejections;
          let excused =
            (liq && w.policy = Workload.Optimistic)
            || exposed p who
            || (who >= 0 && who <= hops && not (abides p who))
          in
          if not excused then
            add "C" (Printf.sprintf "pid %d rejected: %s" who what))
        p.rejections;
      if
        p.proto <> Workload.Htlc && p.terms.(0) && abides p 0
        && p.flows.(0) < 0
        && not p.alice_cert
      then
        add "CS1"
          (Printf.sprintf "alice paid %d without a certificate"
             (-p.flows.(0)));
      if p.terms.(hops) && abides p hops && p.bob_cert_issued && p.paid_at < 0
      then add "CS2" "bob issued a certificate but was not paid";
      for ci = 1 to hops - 1 do
        if p.terms.(ci) && abides p ci && p.flows.(ci) < 0 then
          add "CS3" (Printf.sprintf "connector %d lost %d" ci (-p.flows.(ci)))
      done;
      if !viols <> [] then begin
        violations := !viols @ !violations;
        Violated
      end
      else if p.paid_at >= 0 then Committed
      else if
        (* settled for abort purposes: every customer terminated or was
           crash-covered *)
        let ok = ref true in
        for ci = 0 to hops do
          if not (p.terms.(ci) || exposed p ci) then ok := false
        done;
        !ok
      then Aborted
      else Stuck
    end
  in
  let outcomes = Array.init w.payments classify in
  let conservation_ok =
    Array.for_all
      (fun b ->
        (match Ledger.Book.audit b with Ok () -> true | Error _ -> false)
        && List.for_all (fun (_, bal) -> bal >= 0) (Ledger.Book.accounts b))
      books
  in
  if not conservation_ok then
    violations :=
      {
        payment = -1;
        property = "ES/M";
        detail = "a shared escrow book failed its conservation audit";
      }
      :: !violations;
  let count o = Array.fold_left (fun a x -> if x = o then a + 1 else a) 0 outcomes in
  let latencies =
    let l = ref [] in
    Array.iteri
      (fun k o ->
        if o = Committed then
          l := (pays.(k).paid_at - pays.(k).arrived_at) :: !l)
      outcomes;
    let a = Array.of_list !l in
    Array.sort compare a;
    a
  in
  let committed = count Committed in
  (* critical-path blame per committed payment: root = its arrival note,
     sink = the deliver under which Bob's payout was released, so the
     category gaps sum exactly to paid_at - arrived_at. A message departs
     up to [sigma] after its send node (send-side compute), so the largest
     honest synchronous gap is [delta + sigma] — beyond that is GST wait. *)
  let blame_reports =
    match causal with
    | None -> []
    | Some c ->
        let acc = ref [] in
        for k = w.payments - 1 downto 0 do
          if outcomes.(k) = Committed && roots.(k) >= 0 && paid_nodes.(k) >= 0
          then
            acc :=
              ( k,
                Obsv.Blame.attribute ~delta:(delta + sigma) c ~root:roots.(k)
                  ~sink:paid_nodes.(k) )
              :: !acc
        done;
        !acc
  in
  let blame =
    match causal with
    | None -> None
    | Some _ -> Some (Obsv.Blame.aggregate (List.map snd blame_reports))
  in
  let report =
    {
      workload = w;
      seed;
      plan = Faults.Fault_plan.to_string plan;
      status =
        (match status with
        | Engine.Quiescent -> "quiescent"
        | Engine.Horizon_reached -> "horizon"
        | Engine.Event_limit -> "event-limit");
      admitted = !admitted;
      committed;
      aborted = count Aborted;
      rejected = count Rejected;
      stuck = count Stuck;
      violated = count Violated;
      violations = List.rev !violations;
      liquidity_rejections = !liquidity_rejections;
      conservation_ok;
      latency_p50 = percentile latencies 50;
      latency_p95 = percentile latencies 95;
      latency_p99 = percentile latencies 99;
      latency_max =
        (if Array.length latencies = 0 then 0
         else latencies.(Array.length latencies - 1));
      makespan = end_time;
      throughput_cpm =
        (if end_time = 0 then 0 else committed * 1_000_000 / end_time);
      messages = !messages;
      max_in_flight = !max_in_flight;
      trace_dropped = Trace.dropped_count (Engine.trace engine);
      by_protocol =
        List.map
          (fun (pr, _) ->
            let assigned = ref 0 and comm = ref 0 in
            Array.iteri
              (fun k o ->
                if protos.(k) = pr then begin
                  incr assigned;
                  if o = Committed then incr comm
                end)
              outcomes;
            (Workload.proto_name pr, !assigned, !comm))
          w.mix;
      blame;
      blame_reports;
      events = Engine.events_processed engine;
      wall_ns = max 1 (Fleet.now_ns () - wall_t0);
    }
  in
  (* --- telemetry --- *)
  let reg = Obsv.Metrics.default in
  List.iter
    (fun (pr, _) ->
      List.iter
        (fun o ->
          let n =
            Array.fold_left ( + ) 0
              (Array.mapi
                 (fun k x ->
                   if protos.(k) = pr && x = o then 1 else 0)
                 outcomes)
          in
          if n > 0 then
            Obsv.Metrics.add
              (Obsv.Metrics.counter reg ~help:"Load-run payment outcomes"
                 ~labels:
                   [
                     ("protocol", Workload.proto_name pr);
                     ("outcome", outcome_name o);
                   ]
                 "xchain_load_payments_total")
              n)
        [ Committed; Aborted; Rejected; Stuck; Violated ])
    w.mix;
  Array.iteri
    (fun k o ->
      if o = Committed then
        Obsv.Metrics.observe
          (Obsv.Metrics.histogram reg
             ~help:"Commit latency (arrival to Bob's payout), ticks"
             ~labels:[ ("protocol", Workload.proto_name protos.(k)) ]
             "xchain_load_commit_latency")
          (pays.(k).paid_at - pays.(k).arrived_at))
    outcomes;
  Obsv.Metrics.add
    (Obsv.Metrics.counter reg
       ~help:"In-protocol insufficient-funds deposit failures"
       "xchain_load_liquidity_rejections_total")
    !liquidity_rejections;
  Obsv.Metrics.set
    (Obsv.Metrics.gauge reg ~help:"Peak concurrently admitted payments"
       "xchain_load_in_flight_max")
    !max_in_flight;
  let spans = Obsv.Span.default in
  if Obsv.Span.capture spans then begin
    let root =
      Obsv.Span.start spans ~name:"load"
        ~attrs:
          [
            ("payments", string_of_int w.payments);
            ("seed", string_of_int seed);
          ]
        ~at:0 ()
    in
    Array.iteri
      (fun k o ->
        let p = pays.(k) in
        let s =
          Obsv.Span.start spans ~parent:root ~name:"payment"
            ~attrs:
              [
                ("id", string_of_int k);
                ("protocol", Workload.proto_name p.proto);
              ]
            ~trace_id:(if Option.is_none causal then -1 else k)
            ~root_event:roots.(k)
            ~at:(max 0 p.arrived_at) ()
        in
        (* a stuck payment's span must never export as open-ended or as
           settling when the engine merely stopped: it is force-closed at
           the horizon the scheduler gave up at *)
        Obsv.Span.finish ~status:(outcome_name o)
          ~at:
            (if p.settled_at >= 0 then p.settled_at
             else if o = Stuck then horizon
             else end_time)
          s)
      outcomes;
    Obsv.Span.finish ~status:report.status ~at:end_time root
  end;
  report

(* ------------------------------- output ------------------------------- *)

let to_json r =
  let b = Buffer.create 1024 in
  let str s = Buffer.add_string b ("\"" ^ Obsv.Metrics.json_escape s ^ "\"") in
  Buffer.add_string b "{\"workload\":";
  str (Workload.to_string r.workload);
  Printf.bprintf b ",\"seed\":%d,\"plan\":" r.seed;
  str r.plan;
  Buffer.add_string b ",\"status\":";
  str r.status;
  Printf.bprintf b
    ",\"payments\":%d,\"admitted\":%d,\"committed\":%d,\"aborted\":%d,\"rejected\":%d,\"stuck\":%d,\"violated\":%d"
    r.workload.Workload.payments r.admitted r.committed r.aborted r.rejected
    r.stuck r.violated;
  Printf.bprintf b ",\"liquidity_rejections\":%d,\"conservation_ok\":%b"
    r.liquidity_rejections r.conservation_ok;
  Printf.bprintf b
    ",\"latency\":{\"p50\":%d,\"p95\":%d,\"p99\":%d,\"max\":%d}" r.latency_p50
    r.latency_p95 r.latency_p99 r.latency_max;
  Printf.bprintf b
    ",\"makespan\":%d,\"throughput_cpm\":%d,\"messages\":%d,\"events\":%d,\"max_in_flight\":%d,\"trace_dropped\":%d"
    r.makespan r.throughput_cpm r.messages r.events r.max_in_flight
    r.trace_dropped;
  Buffer.add_string b ",\"by_protocol\":[";
  List.iteri
    (fun i (name, assigned, committed) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"protocol\":\"%s\",\"assigned\":%d,\"committed\":%d}"
        name assigned committed)
    r.by_protocol;
  Buffer.add_string b "],\"violations\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"payment\":%d,\"property\":" v.payment;
      str v.property;
      Buffer.add_string b ",\"detail\":";
      str v.detail;
      Buffer.add_char b '}')
    r.violations;
  Buffer.add_char b ']';
  (* only present on causally-traced runs, so untraced reports stay
     byte-identical to earlier releases *)
  Option.iter
    (fun agg ->
      Buffer.add_string b ",\"blame\":";
      Buffer.add_string b (Obsv.Blame.agg_to_json agg))
    r.blame;
  (* wall-clock timing is the one nondeterministic member; it comes last
     so byte-identity checks can strip it (scripts/strip_timing.py) *)
  Printf.bprintf b ",\"timing\":{\"wall_ns\":%d,\"events_per_sec\":%d}"
    r.wall_ns
    (int_of_float (float_of_int r.events /. (float_of_int r.wall_ns /. 1e9)));
  Buffer.add_char b '}';
  Buffer.contents b

let pp_summary ppf r =
  Fmt.pf ppf "@[<v>load: %a@," Workload.pp r.workload;
  Fmt.pf ppf "seed %d, plan %s, engine %s@," r.seed r.plan r.status;
  Fmt.pf ppf
    "payments %d: committed %d, aborted %d, rejected %d, stuck %d, violated \
     %d@,"
    r.workload.Workload.payments r.committed r.aborted r.rejected r.stuck
    r.violated;
  Fmt.pf ppf "liquidity rejections %d, conservation %s@," r.liquidity_rejections
    (if r.conservation_ok then "ok" else "BROKEN");
  Fmt.pf ppf "latency ticks p50 %d, p95 %d, p99 %d, max %d@," r.latency_p50
    r.latency_p95 r.latency_p99 r.latency_max;
  Fmt.pf ppf "makespan %d ticks, throughput %d commits/Mtick, peak in-flight %d@,"
    r.makespan r.throughput_cpm r.max_in_flight;
  List.iter
    (fun (name, assigned, committed) ->
      Fmt.pf ppf "  %-10s %d assigned, %d committed@," name assigned committed)
    r.by_protocol;
  List.iter
    (fun v ->
      Fmt.pf ppf "  VIOLATION pay=%d %s: %s@," v.payment v.property v.detail)
    r.violations;
  Fmt.pf ppf "@]"
