open Sim
open Protocols

type outcome = Committed | Aborted | Rejected | Stuck | Violated

let outcome_name = function
  | Committed -> "committed"
  | Aborted -> "aborted"
  | Rejected -> "rejected"
  | Stuck -> "stuck"
  | Violated -> "violated"

type violation = { payment : int; property : string; detail : string }

type routing_stats = {
  topology : string;
  strategy : string;
  max_splits : int;
  offered_value : int;
  committed_value : int;
  paths_selected : int;
  split_payments : int;
  partial_payments : int;
  no_route_rejections : int;
  instances : int;
  instances_committed : int;
  instances_settled : int;
}

type committee_stats = {
  certs : int;
  verdicts : int;
  max_batch : int;
  rounds : int;
  cert_lat_sum : int;
  cert_lat_max : int;
}

type report = {
  workload : Workload.t;
  seed : int;
  plan : string;
  status : string;
  admitted : int;
  committed : int;
  aborted : int;
  rejected : int;
  stuck : int;
  violated : int;
  violations : violation list;
  liquidity_rejections : int;
  conservation_ok : bool;
  latency_p50 : int;
  latency_p95 : int;
  latency_p99 : int;
  latency_max : int;
  makespan : int;
  throughput_cpm : int;
  messages : int;
  max_in_flight : int;
  trace_dropped : int;
  by_protocol : (string * int * int) list;
  blame : Obsv.Blame.agg option;
  blame_reports : (int * Obsv.Blame.report) list;
  routing : routing_stats option;
  committee_stats : committee_stats option;
  events : int;
  wall_ns : int;
}

(* Shared model parameters for every payment in a load run; per-protocol
   windows are derived from these exactly as Runner does. *)
let delta = 100
let sigma = 10
let margin = 5

(* Auxiliary (TM/notary) processes per protocol. The committee runs with
   f = 1, i.e. 3f+1 = 4 notaries — enough to exercise consensus without
   quadrupling the pid space. *)
let aux_count = function
  | Workload.Sync | Workload.Naive | Workload.Htlc -> 0
  | Workload.Weak_single | Workload.Atomic -> 1
  | Workload.Committee -> 4
  (* shared payments have no per-payment TM: one external committee block
     serves them all (registered after the payment blocks) *)
  | Workload.Shared -> 0

let block_size ~hops proto = (2 * hops) + 1 + aux_count proto

let weak_cfg = Weak_protocol.default_config

let committee_cfg =
  { Weak_protocol.default_config with tm = Weak_protocol.Committee { f = 1 } }

let params_for (w : Workload.t) proto =
  let drift = match proto with Workload.Naive -> 0 | _ -> w.drift_ppm in
  Params.derive
    { Params.hops = w.hops; delta; sigma; drift_ppm = drift; margin }

(* ------------------------------------------------------------------ *)

type pay = {
  proto : Workload.proto;
  mutable arrived_at : int;
  mutable admitted_at : int;
  mutable settled_at : int;  (** every customer has Terminated *)
  mutable paid_at : int;  (** first Released to Bob *)
  mutable closed : bool;  (** scheduler stopped tracking it *)
  mutable marked : outcome option;  (** Rejected/Stuck, decided in-run *)
  flows : int array;  (** net ledger flow per customer index *)
  terms : bool array;
  mutable term_count : int;
  mutable alice_cert : bool;
  mutable bob_cert_issued : bool;
  mutable rejections : (int * string) list;
  legs_reserved : bool array;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = ((q * n) + 99) / 100 in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let is_liquidity_rejection what =
  (* Book.pp_error Insufficient_funds, wrapped by the escrows' "deposit: "
     prefix; Unknown_account prints "deposit: unknown account …" and so
     stays a real violation. *)
  let prefix = "deposit: account" in
  String.length what >= String.length prefix
  && String.sub what 0 (String.length prefix) = prefix

let run_linear ?(plan = Faults.Fault_plan.none) ?(trace_capacity = 4096)
    ?causal ?prof ?monitor ?sampler ?recorder ~(workload : Workload.t) ~seed
    () =
  let wall_t0 = Fleet.now_ns () in
  let w = workload in
  let hops = w.hops in
  let protos = Workload.assign_mix w ~seed in
  let arrivals = Workload.arrivals w ~seed in
  let stride =
    List.fold_left (fun acc (p, _) -> max acc (block_size ~hops p)) 0 w.mix
  in
  (* Fault plans address hosts: logical pids 0 .. stride-1, applied to
     every payment block (one crashed escrow host is down for everyone). *)
  (match Faults.Fault_plan.validate plan ~nprocs:stride with
  | Ok () -> ()
  | Error e -> invalid_arg ("Load.run: bad fault plan: " ^ e));
  let topo = Topology.create ~hops in
  (* Shared ledgers: books.(i) is escrow host e_i's book; customer c_i's
     funding there is what all payments contend for. *)
  let amounts =
    Array.init hops (fun i -> w.value + (w.commission * (hops - 1 - i)))
  in
  let liquidity_units = if w.liquidity = 0 then w.payments else w.liquidity in
  let books =
    Array.init hops (fun i ->
        let b = Ledger.Book.create ~currency:(Printf.sprintf "cur%d" i) in
        Ledger.Book.open_account b ~owner:(Topology.customer topo i)
          ~balance:(liquidity_units * amounts.(i));
        Ledger.Book.open_account b
          ~owner:(Topology.customer topo (i + 1))
          ~balance:0;
        Ledger.Book.open_account b ~owner:(Topology.escrow topo i) ~balance:0;
        b)
  in
  let envs =
    Array.init w.payments (fun k ->
        Env.make ~topo ~params:(params_for w protos.(k)) ~payment:k
          ~value:w.value ~commission:w.commission ~seed:(seed + 101 + k)
          ~books ())
  in
  (* A protocol's settle horizon, for the derived stuck deadline. Scratch
     envs (private books) only feed window derivation. *)
  let proto_horizon proto =
    match proto with
    | Workload.Sync | Workload.Naive ->
        (params_for w proto).Params.horizon
    | Workload.Htlc ->
        let env0 =
          Env.make ~topo ~params:(params_for w proto) ~value:w.value
            ~commission:w.commission ~seed:(seed + 9991) ()
        in
        Htlc_protocol.window_of env0 (Htlc_protocol.default_config env0) 0
    | Workload.Weak_single | Workload.Committee | Workload.Shared ->
        weak_cfg.patience
    | Workload.Atomic -> Atomic_protocol.default_config.deadline
  in
  let gst_slack = match w.gst with Some g -> 2 * g | None -> 0 in
  let stuck_eff =
    if w.stuck_after > 0 then w.stuck_after
    else
      let base =
        List.fold_left (fun acc (p, _) -> max acc (proto_horizon p)) 0 w.mix
      in
      (* ×4 absorbs clock drift and queueing inside the protocol windows *)
      (4 * base) + (20 * delta) + gst_slack
  in
  let horizon =
    let last_arrival =
      match arrivals with
      | Some arr -> arr.(Array.length arr - 1)
      | None -> (
          match w.arrival with
          | Workload.Closed { clients; think } ->
              let rounds = (w.payments + clients - 1) / clients in
              rounds * (w.patience + stuck_eff + think + 1)
          | _ -> 0)
    in
    last_arrival + w.patience + (2 * stuck_eff) + (20 * delta) + gst_slack
  in
  let max_events =
    (1000 * w.payments) + 100_000
    (* committee consensus traffic is quadratic in committee size per
       certified slot; give it headroom without touching the budget of
       committee-less runs *)
    + (match w.committee with
      | Some c ->
          let slots =
            (w.payments + c.Workload.c_batch - 1) / c.Workload.c_batch
          in
          (slots + (4 * c.Workload.c_pipeline))
          * 4 * c.Workload.c_size * c.Workload.c_size
      | None -> 0)
  in
  (* --- network: model + fault injection, control traffic exempt --- *)
  let injector =
    if Faults.Fault_plan.is_none plan then None
    else Some (Faults.Injector.create ~plan ~seed:(seed + 47) ())
  in
  let model =
    let base =
      match w.gst with
      | None -> Network.Synchronous { delta }
      | Some gst -> Network.Partially_synchronous { gst; delta }
    in
    match injector with
    | None -> base
    | Some inj -> Faults.Injector.jittered_model inj base
  in
  let tamper =
    Option.map
      (fun inj ->
        let tam = Faults.Injector.tamper inj in
        (* fault plans address payment-block hosts; the controller (pid 0)
           and the shared committee block (pids past the payment blocks)
           are outside their pid space and stay exempt *)
        let payment_limit = 1 + (w.payments * stride) in
        fun ~send_time ~src ~dst ~tag ->
          if src = 0 || dst = 0 || src >= payment_limit || dst >= payment_limit
          then [ Network.Intact ]
          else
            tam ~send_time
              ~src:((src - 1) mod stride)
              ~dst:((dst - 1) mod stride)
              ~tag)
      injector
  in
  let adversary ~send_time:_ ~src:_ ~dst:_ ~tag ~bounds =
    if tag = "start" || tag = "traffic-done" then Some bounds.Network.lo
    else None
  in
  let network =
    Network.create ~adversary ?tamper ~link_stats:false model
      (Rng.create ~seed:(seed + 17))
  in
  let trace_cap = if trace_capacity = 0 then None else Some trace_capacity in
  let engine =
    Engine.create ~tag_of:Msg.tag ~network ~sigma ?trace_capacity:trace_cap
      ?causal ?prof ?monitor ?sampler ?recorder ~seed ()
  in
  (* --- per-payment accounting state, fed by a trace hook --- *)
  let pays =
    Array.init w.payments (fun k ->
        {
          proto = protos.(k);
          arrived_at = -1;
          admitted_at = -1;
          settled_at = -1;
          paid_at = -1;
          closed = false;
          marked = None;
          flows = Array.make (hops + 1) 0;
          terms = Array.make (hops + 1) false;
          term_count = 0;
          alice_cert = false;
          bob_cert_issued = false;
          rejections = [];
          legs_reserved = Array.make hops false;
        })
  in
  let reserved = Array.make hops 0 in
  let messages = ref 0 in
  (* causal anchors per payment: the arrival note (blame root) and the
     deliver that paid Bob (blame sink), captured from the dispatch context *)
  let roots = Array.make w.payments (-1) in
  let paid_nodes = Array.make w.payments (-1) in
  let esc_idx lp =
    if lp > hops && lp <= 2 * hops then Some (lp - hops - 1) else None
  in
  Trace.on_record (Engine.trace engine) (fun entry ->
      match entry with
      | Trace.Sent _ -> incr messages
      | Trace.Observed { t; pid; obs } when pid >= 1 ->
          let k = (pid - 1) / stride in
          let p = pays.(k) in
          (match obs with
          | Obs.Deposited { escrow; depositor; amount; _ } -> (
              if depositor >= 0 && depositor <= hops then
                p.flows.(depositor) <- p.flows.(depositor) - amount;
              match esc_idx escrow with
              | Some i when p.legs_reserved.(i) ->
                  p.legs_reserved.(i) <- false;
                  reserved.(i) <- reserved.(i) - amounts.(i)
              | _ -> ())
          | Obs.Released { to_; amount; _ } ->
              if to_ >= 0 && to_ <= hops then begin
                p.flows.(to_) <- p.flows.(to_) + amount;
                if to_ = hops && p.paid_at < 0 then begin
                  p.paid_at <- t;
                  paid_nodes.(k) <- Engine.current_node engine
                end
              end
          | Obs.Refunded { depositor; amount; _ } ->
              if depositor >= 0 && depositor <= hops then
                p.flows.(depositor) <- p.flows.(depositor) + amount
          | Obs.Cert_received
              { pid = who; kind = Obs.Chi | Obs.Chi_commit; valid = true }
            when who = 0 ->
              p.alice_cert <- true
          | Obs.Cert_issued { by; _ } when by = hops ->
              p.bob_cert_issued <- true
          | Obs.Terminated { pid = who; _ }
            when who >= 0 && who <= hops && not p.terms.(who) ->
              p.terms.(who) <- true;
              p.term_count <- p.term_count + 1;
              if p.term_count = hops + 1 && p.settled_at < 0 then
                p.settled_at <- t
          | Obs.Rejected { pid = who; what } ->
              p.rejections <- (who, what) :: p.rejections
          | _ -> ())
      | _ -> ());
  (* --- controller (pid 0): arrivals, admission, deadlines --- *)
  let queue = Queue.create () in
  let in_flight = ref 0 in
  let max_in_flight = ref 0 in
  let admitted = ref 0 in
  let arr_label k = "arr#" ^ string_of_int k in
  let pat_label k = "pat#" ^ string_of_int k in
  let stuck_label k = "stuck#" ^ string_of_int k in
  let try_admit ctx k =
    let p = pays.(k) in
    let cap_ok = w.cap = 0 || !in_flight < w.cap in
    let liq_ok =
      match w.policy with
      | Workload.Optimistic -> true
      | Workload.Reserve ->
          let ok = ref true in
          for i = 0 to hops - 1 do
            if
              Ledger.Book.balance books.(i) (Topology.customer topo i)
              - reserved.(i)
              < amounts.(i)
            then ok := false
          done;
          !ok
    in
    cap_ok && liq_ok
    && begin
         (match w.policy with
         | Workload.Reserve ->
             for i = 0 to hops - 1 do
               p.legs_reserved.(i) <- true;
               reserved.(i) <- reserved.(i) + amounts.(i)
             done
         | Workload.Optimistic -> ());
         p.admitted_at <- Engine.now engine;
         (* Queue edge from the arrival note: the gap the walk crosses here
            is exactly this payment's wait behind admission *)
         ignore
           (Engine.causal_note ctx ~after:roots.(k) ~trace:k
              ~label:("admit#" ^ string_of_int k)
              ());
         incr admitted;
         incr in_flight;
         if !in_flight > !max_in_flight then max_in_flight := !in_flight;
         let base = 1 + (k * stride) in
         for l = 0 to block_size ~hops p.proto - 1 do
           Engine.send ctx ~dst:(base + l) Msg.Start
         done;
         Engine.set_timer_after ctx ~after:stuck_eff ~label:(stuck_label k);
         Engine.cancel_timer ctx ~label:(pat_label k);
         true
       end
  in
  let drain ctx =
    let blocked = ref false in
    while (not !blocked) && not (Queue.is_empty queue) do
      let k = Queue.peek queue in
      let p = pays.(k) in
      if p.closed || p.admitted_at >= 0 then ignore (Queue.pop queue)
      else if try_admit ctx k then ignore (Queue.pop queue)
      else blocked := true
    done
  in
  let close ctx k ~release =
    let p = pays.(k) in
    if not p.closed then begin
      p.closed <- true;
      if p.admitted_at >= 0 then decr in_flight;
      if release then
        for i = 0 to hops - 1 do
          if p.legs_reserved.(i) then begin
            p.legs_reserved.(i) <- false;
            reserved.(i) <- reserved.(i) - amounts.(i)
          end
        done;
      Engine.cancel_timer ctx ~label:(stuck_label k);
      (match w.arrival with
      | Workload.Closed { clients; think } ->
          let next = k + clients in
          if next < w.payments then
            Engine.set_timer_after ctx ~after:(max 1 think)
              ~label:(arr_label next)
      | _ -> ());
      drain ctx
    end
  in
  let arrive ctx k =
    pays.(k).arrived_at <- Engine.now engine;
    roots.(k) <-
      Engine.causal_note ctx ~trace:k
        ~label:("arrive#" ^ string_of_int k)
        ();
    Queue.add k queue;
    Engine.set_timer_after ctx ~after:w.patience ~label:(pat_label k);
    drain ctx
  in
  let controller =
    {
      Engine.on_start =
        (fun ctx ->
          match arrivals with
          | Some arr ->
              Array.iteri
                (fun k t ->
                  Engine.set_timer ctx ~deadline:t ~label:(arr_label k))
                arr
          | None -> (
              match w.arrival with
              | Workload.Closed { clients; _ } ->
                  for c = 0 to min clients w.payments - 1 do
                    (* 1-tick stagger keeps first-round admission ordered *)
                    Engine.set_timer ctx ~deadline:(1 + c)
                      ~label:(arr_label c)
                  done
              | _ -> assert false));
      on_receive =
        (fun ctx ~src:_ msg ->
          match msg with
          | Msg.Traffic_done { payment = k } ->
              let p = pays.(k) in
              if (not p.closed) && p.settled_at >= 0 then
                close ctx k ~release:true
          | _ -> ());
      on_timer =
        (fun ctx ~label ->
          match String.split_on_char '#' label with
          | [ "arr"; k ] -> arrive ctx (int_of_string k)
          | [ "pat"; k ] ->
              let k = int_of_string k in
              let p = pays.(k) in
              if (not p.closed) && p.admitted_at < 0 then begin
                p.marked <- Some Rejected;
                close ctx k ~release:false
              end
          | [ "stuck"; k ] ->
              let k = int_of_string k in
              let p = pays.(k) in
              if not p.closed then
                if p.settled_at >= 0 then close ctx k ~release:true
                else begin
                  p.marked <- Some Stuck;
                  (* a stuck payment's un-deposited reservations stay
                     locked: it may still deposit later, and releasing
                     them would double-spend the collateral *)
                  close ctx k ~release:false
                end
          | _ -> ())
    }
  in
  let cpid =
    Engine.add_process engine ~clock:Clock.perfect ~label:"sched" controller
  in
  assert (cpid = 0);
  (* --- payment blocks --- *)
  let clock_rng = Rng.create ~seed:(seed + 31) in
  let wrap ~payment ~abs ~is_customer ~skew inner =
    let started = ref false in
    let reported = ref false in
    let buffered = ref [] in
    let after_inner ctx =
      if is_customer && (not !reported) && Engine.is_halted engine abs
      then begin
        reported := true;
        Engine.send_absolute ctx ~dst:0 (Msg.Traffic_done { payment })
      end
    in
    {
      Engine.on_start = (fun _ -> ());
      on_receive =
        (fun ctx ~src msg ->
          match msg with
          | Msg.Start ->
              if not !started then begin
                started := true;
                (* re-anchor the local epoch: the protocol's absolute
                   local deadlines must count from this payment's own
                   start, not from engine time 0 *)
                let num, den = Clock.rate (Engine.clock_of engine abs) in
                Engine.set_clock engine ~pid:abs
                  (Clock.create ~l0:skew ~g0:(Engine.now engine) ~num ~den
                     ());
                inner.Engine.on_start ctx;
                let pending = List.rev !buffered in
                buffered := [];
                List.iter
                  (fun (src, m) ->
                    if not (Engine.is_halted engine abs) then
                      inner.Engine.on_receive ctx ~src m)
                  pending;
                after_inner ctx
              end
          | _ ->
              if !started then begin
                inner.Engine.on_receive ctx ~src msg;
                after_inner ctx
              end
              else buffered := (src, msg) :: !buffered);
      on_timer =
        (fun ctx ~label ->
          if !started then begin
            inner.Engine.on_timer ctx ~label;
            after_inner ctx
          end);
    }
  in
  (* --- shared batching committee: one block after the payment blocks --- *)
  let shared_committee =
    match w.committee with
    | None -> None
    | Some c ->
        let n = c.Workload.c_size in
        let qs =
          match c.Workload.c_family with
          | "majority" -> Quorum_system.majority ~n ~f:c.Workload.c_f ()
          | "weighted" ->
              Quorum_system.weighted ~weights:(Array.make n 1)
                ~f:c.Workload.c_f ()
          | "grid" ->
              let side = ref 0 in
              while !side * !side < n do
                incr side
              done;
              if !side * !side <> n then
                invalid_arg
                  "Load.run: grid committee size must be a perfect square";
              Quorum_system.grid ~rows:!side ~cols:!side ~f:c.Workload.c_f ()
          | fam -> invalid_arg ("Load.run: unknown committee family " ^ fam)
        in
        (match Quorum_system.validate qs with
        | Ok () -> ()
        | Error e -> invalid_arg ("Load.run: committee: " ^ e));
        let creg = Xcrypto.Auth.create ~seed:(seed + 71) in
        let signers = Array.init n (fun i -> Xcrypto.Auth.register creg i) in
        let cbase = 1 + (w.payments * stride) in
        let part_count = (2 * hops) + 1 in
        let ccfg =
          {
            Committee_tm.qs;
            registry = creg;
            batch_cap = c.Workload.c_batch;
            pipeline = c.Workload.c_pipeline;
            base_timeout = weak_cfg.Weak_protocol.tm_base_timeout;
            reply_to =
              (fun item ->
                if item >= 0 && item < w.payments then
                  Array.init part_count (fun l -> 1 + (item * stride) + l)
                else [||]);
            hops_of = (fun _ -> hops);
          }
        in
        Some (c, ccfg, signers, cbase)
  in
  let shared_weak_cfg k =
    match shared_committee with
    | None -> invalid_arg "Load.run: shared proto without a committee= spec"
    | Some (c, ccfg, signers, cbase) ->
        {
          weak_cfg with
          Weak_protocol.tm =
            Weak_protocol.Shared
              {
                pids = Array.init c.Workload.c_size (fun i -> cbase + i);
                item = k;
                verify = Committee_tm.verify ccfg ~signer:signers.(0);
              };
        }
  in
  for k = 0 to w.payments - 1 do
    let env = envs.(k) in
    let inner =
      match protos.(k) with
      | Workload.Sync | Workload.Naive ->
          fun l -> fst (Anta.Executor.handlers (Sync_protocol.automaton_for env l) ())
      | Workload.Htlc ->
          let cfg = Htlc_protocol.default_config env in
          let preimage = Htlc_protocol.fresh_preimage ~seed:(seed + 57 + k) in
          fun l -> Htlc_protocol.handlers_for env cfg preimage l
      | Workload.Weak_single -> Weak_protocol.handlers_for env weak_cfg
      | Workload.Committee -> Weak_protocol.handlers_for env committee_cfg
      | Workload.Shared -> Weak_protocol.handlers_for env (shared_weak_cfg k)
      | Workload.Atomic -> Atomic_protocol.handlers_for env Atomic_protocol.default_config
    in
    let bs = block_size ~hops protos.(k) in
    let base = 1 + (k * stride) in
    for l = 0 to stride - 1 do
      let clock = Clock.random clock_rng ~drift_ppm:w.drift_ppm in
      let skew = Rng.int clock_rng 1001 in
      let handlers =
        if l < bs then
          wrap ~payment:k ~abs:(base + l) ~is_customer:(l <= hops) ~skew
            (inner l)
        else Engine.silent
      in
      (* profiler role labels: constant strings, interned only when the
         engine carries a profiler *)
      let label =
        if l = 0 then "alice"
        else if l < hops then "chloe"
        else if l = hops then "bob"
        else if l <= 2 * hops then "escrow"
        else if l < bs then "aux"
        else "idle"
      in
      ignore (Engine.add_process engine ~clock ~base ~label handlers)
    done
  done;
  (* the shared committee's replicas form one block right after the
     payment blocks; [c_faulty] of them (never the sequencer) are
     crash-silent from the start *)
  let sequencer_com = ref None in
  (match shared_committee with
  | None -> ()
  | Some (c, ccfg, signers, cbase) ->
      for i = 0 to c.Workload.c_size - 1 do
        let handlers =
          if i >= 1 && i <= c.Workload.c_faulty then Engine.silent
          else begin
            let handlers, com =
              Committee_tm.handlers ccfg ~index:i ~signer:signers.(i)
            in
            if i = 0 then sequencer_com := Some com;
            handlers
          end
        in
        let pid =
          Engine.add_process engine ~clock:Clock.perfect ~base:cbase
            ~label:"notary" handlers
        in
        assert (pid = cbase + i)
      done);
  (* host crashes expand to every payment block *)
  List.iter
    (fun (c : Faults.Fault_plan.crash_spec) ->
      for k = 0 to w.payments - 1 do
        Engine.schedule_crash engine
          ~pid:(1 + (k * stride) + c.pid)
          ~at:c.at ?recover_at:c.recover_at ()
      done)
    plan.Faults.Fault_plan.crashes;
  (* Online money-conservation check: exactly the run's post-hoc audit
     (per-book conservation plus non-negative balances) re-evaluated on
     every dispatch, so the monitor's final verdict agrees with the
     report's [conservation_ok] by construction. *)
  (match monitor with
  | None -> ()
  | Some m ->
      Obsv.Monitor.register m ~name:"M" (fun () ->
          let bad = ref None in
          Array.iteri
            (fun i b ->
              if
                !bad = None
                && not
                     ((match Ledger.Book.audit b with
                      | Ok () -> true
                      | Error _ -> false)
                     && List.for_all
                          (fun (_, bal) -> bal >= 0)
                          (Ledger.Book.accounts b))
              then
                bad :=
                  Some
                    (Printf.sprintf
                       "shared escrow book %d failed its conservation audit" i))
            books;
          !bad));
  (match sampler with
  | None -> ()
  | Some s ->
      let columns =
        "queue_depth" :: "in_flight" :: "admitted"
        :: List.init hops (Printf.sprintf "escrow%d_pool")
      in
      Obsv.Sampler.set_probe s ~columns (fun () ->
          Array.init (3 + hops) (fun i ->
              match i with
              | 0 -> Engine.queue_depth engine
              | 1 -> !in_flight
              | 2 -> !admitted
              | i -> Ledger.Book.pool_total books.(i - 3))));
  let status = Engine.run ~horizon ~max_events engine in
  let end_time = Engine.now engine in
  (* --- classification --- *)
  let violations = ref [] in
  let liquidity_rejections = ref 0 in
  let exposed p lp =
    let hi = if p.settled_at >= 0 then p.settled_at else end_time in
    let lo = if p.admitted_at >= 0 then p.admitted_at else 0 in
    List.exists
      (fun (c : Faults.Fault_plan.crash_spec) ->
        c.pid = lp && c.at <= hi
        && match c.recover_at with None -> true | Some r -> r >= lo)
      plan.Faults.Fault_plan.crashes
  in
  (* a customer abides unless it, or an adjacent escrow host, was crashed
     while the payment was live — mirrors chaos's non-abiding registration *)
  let abides p ci =
    (not (exposed p ci))
    && (ci = 0 || not (exposed p (hops + ci)))
    && (ci = hops || not (exposed p (hops + 1 + ci)))
  in
  let classify k =
    let p = pays.(k) in
    if p.marked = Some Rejected || p.admitted_at < 0 then Rejected
    else begin
      let viols = ref [] in
      let add property detail =
        viols := { payment = k; property; detail } :: !viols
      in
      List.iter
        (fun (who, what) ->
          let liq = is_liquidity_rejection what in
          if liq then incr liquidity_rejections;
          let excused =
            (liq && w.policy = Workload.Optimistic)
            || exposed p who
            || (who >= 0 && who <= hops && not (abides p who))
          in
          if not excused then
            add "C" (Printf.sprintf "pid %d rejected: %s" who what))
        p.rejections;
      if
        p.proto <> Workload.Htlc && p.terms.(0) && abides p 0
        && p.flows.(0) < 0
        && not p.alice_cert
      then
        add "CS1"
          (Printf.sprintf "alice paid %d without a certificate"
             (-p.flows.(0)));
      if p.terms.(hops) && abides p hops && p.bob_cert_issued && p.paid_at < 0
      then add "CS2" "bob issued a certificate but was not paid";
      for ci = 1 to hops - 1 do
        if p.terms.(ci) && abides p ci && p.flows.(ci) < 0 then
          add "CS3" (Printf.sprintf "connector %d lost %d" ci (-p.flows.(ci)))
      done;
      if !viols <> [] then begin
        violations := !viols @ !violations;
        Violated
      end
      else if p.paid_at >= 0 then Committed
      else if
        (* settled for abort purposes: every customer terminated or was
           crash-covered *)
        let ok = ref true in
        for ci = 0 to hops do
          if not (p.terms.(ci) || exposed p ci) then ok := false
        done;
        !ok
      then Aborted
      else Stuck
    end
  in
  let outcomes = Array.init w.payments classify in
  let conservation_ok =
    Array.for_all
      (fun b ->
        (match Ledger.Book.audit b with Ok () -> true | Error _ -> false)
        && List.for_all (fun (_, bal) -> bal >= 0) (Ledger.Book.accounts b))
      books
  in
  if not conservation_ok then
    violations :=
      {
        payment = -1;
        property = "ES/M";
        detail = "a shared escrow book failed its conservation audit";
      }
      :: !violations;
  let count o = Array.fold_left (fun a x -> if x = o then a + 1 else a) 0 outcomes in
  let latencies =
    let l = ref [] in
    Array.iteri
      (fun k o ->
        if o = Committed then
          l := (pays.(k).paid_at - pays.(k).arrived_at) :: !l)
      outcomes;
    let a = Array.of_list !l in
    Array.sort compare a;
    a
  in
  let committed = count Committed in
  (* critical-path blame per committed payment: root = its arrival note,
     sink = the deliver under which Bob's payout was released, so the
     category gaps sum exactly to paid_at - arrived_at. A message departs
     up to [sigma] after its send node (send-side compute), so the largest
     honest synchronous gap is [delta + sigma] — beyond that is GST wait. *)
  let blame_reports =
    match causal with
    | None -> []
    | Some c ->
        let acc = ref [] in
        for k = w.payments - 1 downto 0 do
          if outcomes.(k) = Committed && roots.(k) >= 0 && paid_nodes.(k) >= 0
          then
            acc :=
              ( k,
                Obsv.Blame.attribute ~delta:(delta + sigma) c ~root:roots.(k)
                  ~sink:paid_nodes.(k) )
              :: !acc
        done;
        !acc
  in
  let blame =
    match causal with
    | None -> None
    | Some _ -> Some (Obsv.Blame.aggregate (List.map snd blame_reports))
  in
  let report =
    {
      workload = w;
      seed;
      plan = Faults.Fault_plan.to_string plan;
      status =
        (match status with
        | Engine.Quiescent -> "quiescent"
        | Engine.Horizon_reached -> "horizon"
        | Engine.Event_limit -> "event-limit"
        | Engine.Violation_stop -> "violation-stop");
      admitted = !admitted;
      committed;
      aborted = count Aborted;
      rejected = count Rejected;
      stuck = count Stuck;
      violated = count Violated;
      violations = List.rev !violations;
      liquidity_rejections = !liquidity_rejections;
      conservation_ok;
      latency_p50 = percentile latencies 50;
      latency_p95 = percentile latencies 95;
      latency_p99 = percentile latencies 99;
      latency_max =
        (if Array.length latencies = 0 then 0
         else latencies.(Array.length latencies - 1));
      makespan = end_time;
      throughput_cpm =
        (if end_time = 0 then 0 else committed * 1_000_000 / end_time);
      messages = !messages;
      max_in_flight = !max_in_flight;
      trace_dropped = Trace.dropped_count (Engine.trace engine);
      by_protocol =
        List.map
          (fun (pr, _) ->
            let assigned = ref 0 and comm = ref 0 in
            Array.iteri
              (fun k o ->
                if protos.(k) = pr then begin
                  incr assigned;
                  if o = Committed then incr comm
                end)
              outcomes;
            (Workload.proto_name pr, !assigned, !comm))
          w.mix;
      blame;
      blame_reports;
      routing = None;
      committee_stats =
        (match !sequencer_com with
        | None -> None
        | Some com ->
            (* deterministic: read straight off the sequencer's committee
               state, never the (domain-shared) metrics registry *)
            let certs = ref 0
            and verdicts = ref 0
            and max_batch = ref 0
            and rounds = ref 0
            and lat_sum = ref 0
            and lat_max = ref 0 in
            for slot = 0 to Quorum.Committee.slot_count com - 1 do
              match Quorum.Committee.cert_of_slot com slot with
              | None -> ()
              | Some cert ->
                  let batch = List.length cert.Consensus.Dls.d_value in
                  incr certs;
                  verdicts := !verdicts + batch;
                  if batch > !max_batch then max_batch := batch;
                  rounds := !rounds + cert.Consensus.Dls.d_round + 1;
                  let lat =
                    Option.value
                      (Quorum.Committee.cert_latency com slot)
                      ~default:0
                  in
                  lat_sum := !lat_sum + lat;
                  if lat > !lat_max then lat_max := lat
            done;
            Some
              {
                certs = !certs;
                verdicts = !verdicts;
                max_batch = !max_batch;
                rounds = !rounds;
                cert_lat_sum = !lat_sum;
                cert_lat_max = !lat_max;
              });
      events = Engine.events_processed engine;
      wall_ns = max 1 (Fleet.now_ns () - wall_t0);
    }
  in
  (* --- telemetry --- *)
  let reg = Obsv.Metrics.default in
  List.iter
    (fun (pr, _) ->
      List.iter
        (fun o ->
          let n =
            Array.fold_left ( + ) 0
              (Array.mapi
                 (fun k x ->
                   if protos.(k) = pr && x = o then 1 else 0)
                 outcomes)
          in
          if n > 0 then
            Obsv.Metrics.add
              (Obsv.Metrics.counter reg ~help:"Load-run payment outcomes"
                 ~labels:
                   [
                     ("protocol", Workload.proto_name pr);
                     ("outcome", outcome_name o);
                   ]
                 "xchain_load_payments_total")
              n)
        [ Committed; Aborted; Rejected; Stuck; Violated ])
    w.mix;
  Array.iteri
    (fun k o ->
      if o = Committed then
        Obsv.Metrics.observe
          (Obsv.Metrics.histogram reg
             ~help:"Commit latency (arrival to Bob's payout), ticks"
             ~labels:[ ("protocol", Workload.proto_name protos.(k)) ]
             "xchain_load_commit_latency")
          (pays.(k).paid_at - pays.(k).arrived_at))
    outcomes;
  Obsv.Metrics.add
    (Obsv.Metrics.counter reg
       ~help:"In-protocol insufficient-funds deposit failures"
       "xchain_load_liquidity_rejections_total")
    !liquidity_rejections;
  Obsv.Metrics.set
    (Obsv.Metrics.gauge reg ~help:"Peak concurrently admitted payments"
       "xchain_load_in_flight_max")
    !max_in_flight;
  let spans = Obsv.Span.default in
  if Obsv.Span.capture spans then begin
    let root =
      Obsv.Span.start spans ~name:"load"
        ~attrs:
          [
            ("payments", string_of_int w.payments);
            ("seed", string_of_int seed);
          ]
        ~at:0 ()
    in
    Array.iteri
      (fun k o ->
        let p = pays.(k) in
        let s =
          Obsv.Span.start spans ~parent:root ~name:"payment"
            ~attrs:
              [
                ("id", string_of_int k);
                ("protocol", Workload.proto_name p.proto);
              ]
            ~trace_id:(if Option.is_none causal then -1 else k)
            ~root_event:roots.(k)
            ~at:(max 0 p.arrived_at) ()
        in
        (* a stuck payment's span must never export as open-ended or as
           settling when the engine merely stopped: it is force-closed at
           the horizon the scheduler gave up at *)
        Obsv.Span.finish ~status:(outcome_name o)
          ~at:
            (if p.settled_at >= 0 then p.settled_at
             else if o = Stuck then horizon
             else end_time)
          s)
      outcomes;
    Obsv.Span.finish ~status:report.status ~at:end_time root
  end;
  report

(* --------------------------- routed execution --------------------------- *)

(* One protocol instance: a single split of a payment, running the plain
   linear protocol over the books of its path's edges. Everything but the
   accounting arrays is configured at admission time, when the router has
   chosen the path. *)
type inst = {
  mutable i_active : bool;
  mutable i_hops : int;
  mutable i_value : int;
  mutable i_path : int array;  (** edge indices along the path *)
  mutable i_amounts : int array;  (** leg amounts, commissions included *)
  mutable i_bs : int;  (** block size for this path length *)
  mutable i_handlers : (int -> (Msg.t, Obs.t) Sim.Engine.handlers) option;
  mutable i_settled_at : int;
  mutable i_paid_at : int;
  mutable i_done : bool;  (** settlement counted toward the payment *)
  i_flows : int array;
  i_terms : bool array;
  mutable i_term_count : int;
  mutable i_alice_cert : bool;
  mutable i_bob_cert_issued : bool;
  mutable i_rejections : (int * string) list;
  i_deposited : int array;  (** per leg: deposits drawn from the payer *)
  i_refunded : int array;  (** per leg: refunds returned to the payer *)
}

type rpay = {
  rp_proto : Workload.proto;
  mutable rp_arrived_at : int;
  mutable rp_admitted_at : int;
  mutable rp_closed : bool;
  mutable rp_marked : outcome option;
  mutable rp_splits : int list;  (** instance ids, ascending *)
  mutable rp_no_route : bool;
  mutable rp_settled : int;  (** instances settled so far *)
}

let run_routed ?(plan = Faults.Fault_plan.none) ?(trace_capacity = 4096)
    ?causal ?prof ?monitor ?sampler ?recorder ~(workload : Workload.t) ~seed
    ~(rtopo : Routing.Topology.t) () =
  let wall_t0 = Fleet.now_ns () in
  let w = workload in
  let module RT = Routing.Topology in
  let module RR = Routing.Router in
  let nodes = rtopo.RT.nodes in
  let lmax = nodes - 1 in
  let nedges = Array.length rtopo.RT.edges in
  let protos = Workload.assign_mix w ~seed in
  let arrivals = Workload.arrivals w ~seed in
  let max_splits = w.splits in
  let instances = w.payments * max_splits in
  (* the pid stride must fit the longest simple path any route can take *)
  let stride =
    List.fold_left
      (fun acc (p, _) -> max acc (block_size ~hops:lmax p))
      0 w.mix
  in
  (match Faults.Fault_plan.validate plan ~nprocs:stride with
  | Ok () -> ()
  | Error e -> invalid_arg ("Load.run: bad fault plan: " ^ e));
  (* One shared book per graph edge. A distinguished funder account holds
     the edge's liquidity; admission moves each leg's amount from the
     funder to the split's local payer account (the transfer IS the
     reservation), and closing a settled split sweeps the unspent part
     back. The funder's balance is therefore always the edge's spendable
     liquidity, and per-book conservation holds by construction. *)
  let funder = 1_000_000 in
  let ample = w.payments * (w.value + RT.total_commission rtopo) in
  let ebooks =
    Array.init nedges (fun e ->
        let b = Ledger.Book.create ~currency:(Printf.sprintf "edge%d" e) in
        let liq = rtopo.RT.edges.(e).RT.liquidity in
        Ledger.Book.open_account b ~owner:funder
          ~balance:(if liq = 0 then ample else liq);
        b)
  in
  let avail e = Ledger.Book.balance ebooks.(e) funder in
  let router = RR.create ~strategy:w.route rtopo in
  let params_for_hops proto hops =
    let drift = match proto with Workload.Naive -> 0 | _ -> w.drift_ppm in
    Params.derive { Params.hops; delta; sigma; drift_ppm = drift; margin }
  in
  let proto_horizon proto =
    match proto with
    | Workload.Sync | Workload.Naive ->
        (params_for_hops proto lmax).Params.horizon
    | Workload.Htlc ->
        let topo0 = Topology.create ~hops:lmax in
        let env0 =
          Env.make ~topo:topo0 ~params:(params_for_hops proto lmax)
            ~value:w.value ~commission:w.commission ~seed:(seed + 9991) ()
        in
        Htlc_protocol.window_of env0 (Htlc_protocol.default_config env0) 0
    | Workload.Weak_single | Workload.Committee | Workload.Shared ->
        weak_cfg.patience
    | Workload.Atomic -> Atomic_protocol.default_config.deadline
  in
  let gst_slack = match w.gst with Some g -> 2 * g | None -> 0 in
  let stuck_eff =
    if w.stuck_after > 0 then w.stuck_after
    else
      let base =
        List.fold_left (fun acc (p, _) -> max acc (proto_horizon p)) 0 w.mix
      in
      (4 * base) + (20 * delta) + gst_slack
  in
  let horizon =
    let last_arrival =
      match arrivals with
      | Some arr -> arr.(Array.length arr - 1)
      | None -> (
          match w.arrival with
          | Workload.Closed { clients; think } ->
              let rounds = (w.payments + clients - 1) / clients in
              rounds * (w.patience + stuck_eff + think + 1)
          | _ -> 0)
    in
    last_arrival + w.patience + (2 * stuck_eff) + (20 * delta) + gst_slack
  in
  let max_events = (1000 * instances) + 100_000 in
  let injector =
    if Faults.Fault_plan.is_none plan then None
    else Some (Faults.Injector.create ~plan ~seed:(seed + 47) ())
  in
  let model =
    let base =
      match w.gst with
      | None -> Network.Synchronous { delta }
      | Some gst -> Network.Partially_synchronous { gst; delta }
    in
    match injector with
    | None -> base
    | Some inj -> Faults.Injector.jittered_model inj base
  in
  let tamper =
    Option.map
      (fun inj ->
        let tam = Faults.Injector.tamper inj in
        fun ~send_time ~src ~dst ~tag ->
          if src = 0 || dst = 0 then [ Network.Intact ]
          else
            tam ~send_time
              ~src:((src - 1) mod stride)
              ~dst:((dst - 1) mod stride)
              ~tag)
      injector
  in
  let adversary ~send_time:_ ~src:_ ~dst:_ ~tag ~bounds =
    if tag = "start" || tag = "traffic-done" then Some bounds.Network.lo
    else None
  in
  let network =
    Network.create ~adversary ?tamper ~link_stats:false model
      (Rng.create ~seed:(seed + 17))
  in
  let trace_cap = if trace_capacity = 0 then None else Some trace_capacity in
  let engine =
    Engine.create ~tag_of:Msg.tag ~network ~sigma ?trace_capacity:trace_cap
      ?causal ?prof ?monitor ?sampler ?recorder ~seed ()
  in
  let insts =
    Array.init instances (fun _ ->
        {
          i_active = false;
          i_hops = 0;
          i_value = 0;
          i_path = [||];
          i_amounts = [||];
          i_bs = 0;
          i_handlers = None;
          i_settled_at = -1;
          i_paid_at = -1;
          i_done = false;
          i_flows = Array.make (lmax + 1) 0;
          i_terms = Array.make (lmax + 1) false;
          i_term_count = 0;
          i_alice_cert = false;
          i_bob_cert_issued = false;
          i_rejections = [];
          i_deposited = Array.make (max lmax 1) 0;
          i_refunded = Array.make (max lmax 1) 0;
        })
  in
  let rpays =
    Array.init w.payments (fun k ->
        {
          rp_proto = protos.(k);
          rp_arrived_at = -1;
          rp_admitted_at = -1;
          rp_closed = false;
          rp_marked = None;
          rp_splits = [];
          rp_no_route = false;
          rp_settled = 0;
        })
  in
  let messages = ref 0 in
  let roots = Array.make w.payments (-1) in
  let ipaid_nodes = Array.make instances (-1) in
  Trace.on_record (Engine.trace engine) (fun entry ->
      match entry with
      | Trace.Sent _ -> incr messages
      | Trace.Observed { t; pid; obs } when pid >= 1 ->
          let id = (pid - 1) / stride in
          let ins = insts.(id) in
          let h = ins.i_hops in
          if ins.i_active then (
            match obs with
            | Obs.Deposited { depositor; amount; _ } ->
                (* depositor index IS the leg index: customer i deposits
                   only at escrow i *)
                if depositor >= 0 && depositor <= h then begin
                  ins.i_flows.(depositor) <- ins.i_flows.(depositor) - amount;
                  if depositor < h then
                    ins.i_deposited.(depositor) <-
                      ins.i_deposited.(depositor) + amount
                end
            | Obs.Released { to_; amount; _ } ->
                if to_ >= 0 && to_ <= h then begin
                  ins.i_flows.(to_) <- ins.i_flows.(to_) + amount;
                  if to_ = h && ins.i_paid_at < 0 then begin
                    ins.i_paid_at <- t;
                    ipaid_nodes.(id) <- Engine.current_node engine
                  end
                end
            | Obs.Refunded { depositor; amount; _ } ->
                if depositor >= 0 && depositor <= h then begin
                  ins.i_flows.(depositor) <- ins.i_flows.(depositor) + amount;
                  if depositor < h then
                    ins.i_refunded.(depositor) <-
                      ins.i_refunded.(depositor) + amount
                end
            | Obs.Cert_received
                { pid = who; kind = Obs.Chi | Obs.Chi_commit; valid = true }
              when who = 0 ->
                ins.i_alice_cert <- true
            | Obs.Cert_issued { by; _ } when by = h ->
                ins.i_bob_cert_issued <- true
            | Obs.Terminated { pid = who; _ }
              when who >= 0 && who <= h && not ins.i_terms.(who) ->
                ins.i_terms.(who) <- true;
                ins.i_term_count <- ins.i_term_count + 1;
                if ins.i_term_count = h + 1 && ins.i_settled_at < 0 then
                  ins.i_settled_at <- t
            | Obs.Rejected { pid = who; what } ->
                ins.i_rejections <- (who, what) :: ins.i_rejections
            | _ -> ())
      | _ -> ());
  (* --- controller --- *)
  let queue = Queue.create () in
  let in_flight = ref 0 in
  let max_in_flight = ref 0 in
  let admitted = ref 0 in
  let total_paths = ref 0 in
  let split_payments = ref 0 in
  let arr_label k = "arr#" ^ string_of_int k in
  let pat_label k = "pat#" ^ string_of_int k in
  let stuck_label k = "stuck#" ^ string_of_int k in
  let handlers_for_env proto env id =
    match proto with
    | Workload.Sync | Workload.Naive ->
        fun l ->
          fst (Anta.Executor.handlers (Sync_protocol.automaton_for env l) ())
    | Workload.Htlc ->
        let cfg = Htlc_protocol.default_config env in
        let preimage = Htlc_protocol.fresh_preimage ~seed:(seed + 57 + id) in
        Htlc_protocol.handlers_for env cfg preimage
    | Workload.Weak_single -> Weak_protocol.handlers_for env weak_cfg
    | Workload.Committee -> Weak_protocol.handlers_for env committee_cfg
    | Workload.Shared ->
        (* Workload.validate rejects shared + topology *)
        invalid_arg "Load.run: shared protocol requires a linear workload"
    | Workload.Atomic ->
        Atomic_protocol.handlers_for env Atomic_protocol.default_config
  in
  let try_admit ctx k =
    let p = rpays.(k) in
    let cap_ok = w.cap = 0 || !in_flight < w.cap in
    cap_ok
    &&
    match RR.route router ~avail ~value:w.value ~max_splits with
    | Error _ ->
        p.rp_no_route <- true;
        false
    | Ok splits ->
        p.rp_admitted_at <- Engine.now engine;
        incr admitted;
        incr in_flight;
        if !in_flight > !max_in_flight then max_in_flight := !in_flight;
        total_paths := !total_paths + List.length splits;
        if List.length splits > 1 then incr split_payments;
        List.iteri
          (fun j (s : RR.split) ->
            let id = (k * max_splits) + j in
            let patharr = Array.of_list s.RR.path in
            let h = Array.length patharr in
            let amounts = RR.leg_amounts rtopo ~path:s.RR.path ~value:s.RR.value in
            let ptopo = Topology.create ~hops:h in
            let slice = Array.map (fun e -> ebooks.(e)) patharr in
            let env =
              Env.make ~topo:ptopo ~params:(params_for_hops p.rp_proto h)
                ~payment:id ~value:s.RR.value ~amounts ~seed:(seed + 101 + id)
                ~books:slice ()
            in
            (* the reservation: each leg's amount moves from the edge
               funder into the local payer account the protocol draws on *)
            Array.iteri
              (fun i e ->
                match
                  Ledger.Book.transfer ebooks.(e) ~src:funder ~dst:i
                    ~amount:amounts.(i)
                with
                | Ok () -> ()
                | Error _ ->
                    (* the router checked capacity against the funder
                       balance in this same handler; leave any breakage
                       to the conservation audit *)
                    ())
              patharr;
            let ins = insts.(id) in
            ins.i_active <- true;
            ins.i_hops <- h;
            ins.i_value <- s.RR.value;
            ins.i_path <- patharr;
            ins.i_amounts <- amounts;
            ins.i_bs <- block_size ~hops:h p.rp_proto;
            ins.i_handlers <- Some (handlers_for_env p.rp_proto env id);
            p.rp_splits <- p.rp_splits @ [ id ];
            ignore
              (Engine.causal_note ctx ~after:roots.(k) ~trace:id
                 ~label:("admit#" ^ string_of_int id)
                 ());
            let base = 1 + (id * stride) in
            for l = 0 to ins.i_bs - 1 do
              Engine.send ctx ~dst:(base + l) Msg.Start
            done)
          splits;
        Engine.set_timer_after ctx ~after:stuck_eff ~label:(stuck_label k);
        Engine.cancel_timer ctx ~label:(pat_label k);
        true
  in
  let drain ctx =
    let blocked = ref false in
    while (not !blocked) && not (Queue.is_empty queue) do
      let k = Queue.peek queue in
      let p = rpays.(k) in
      if p.rp_closed || p.rp_admitted_at >= 0 then ignore (Queue.pop queue)
      else if try_admit ctx k then ignore (Queue.pop queue)
      else blocked := true
    done
  in
  (* sweep a settled split: return reserved-but-undeposited plus refunded
     value from each leg's local payer account to the edge funder. The
     payer account may pool several live splits' money (deposits draw
     fungibly), but each split's term is non-negative and their sum is the
     account balance, so sweeping one split's term is always covered. *)
  let sweep_instance id =
    let ins = insts.(id) in
    if ins.i_active then
      Array.iteri
        (fun i e ->
          let back =
            ins.i_amounts.(i) - ins.i_deposited.(i) + ins.i_refunded.(i)
          in
          if back > 0 then
            match
              Ledger.Book.transfer ebooks.(e) ~src:i ~dst:funder ~amount:back
            with
            | Ok () -> ()
            | Error _ -> ())
        ins.i_path
  in
  let close ctx k ~release =
    let p = rpays.(k) in
    if not p.rp_closed then begin
      p.rp_closed <- true;
      if p.rp_admitted_at >= 0 then decr in_flight;
      if release then List.iter sweep_instance p.rp_splits;
      Engine.cancel_timer ctx ~label:(stuck_label k);
      (match w.arrival with
      | Workload.Closed { clients; think } ->
          let next = k + clients in
          if next < w.payments then
            Engine.set_timer_after ctx ~after:(max 1 think)
              ~label:(arr_label next)
      | _ -> ());
      drain ctx
    end
  in
  let arrive ctx k =
    rpays.(k).rp_arrived_at <- Engine.now engine;
    roots.(k) <-
      Engine.causal_note ctx ~trace:(k * max_splits)
        ~label:("arrive#" ^ string_of_int k)
        ();
    Queue.add k queue;
    Engine.set_timer_after ctx ~after:w.patience ~label:(pat_label k);
    drain ctx
  in
  let controller =
    {
      Engine.on_start =
        (fun ctx ->
          match arrivals with
          | Some arr ->
              Array.iteri
                (fun k t ->
                  Engine.set_timer ctx ~deadline:t ~label:(arr_label k))
                arr
          | None -> (
              match w.arrival with
              | Workload.Closed { clients; _ } ->
                  for c = 0 to min clients w.payments - 1 do
                    Engine.set_timer ctx ~deadline:(1 + c)
                      ~label:(arr_label c)
                  done
              | _ -> assert false));
      on_receive =
        (fun ctx ~src:_ msg ->
          match msg with
          | Msg.Traffic_done { payment = id } ->
              let ins = insts.(id) in
              let k = id / max_splits in
              let p = rpays.(k) in
              if ins.i_active && (not ins.i_done) && ins.i_settled_at >= 0
              then begin
                ins.i_done <- true;
                p.rp_settled <- p.rp_settled + 1;
                if
                  (not p.rp_closed)
                  && p.rp_settled = List.length p.rp_splits
                then close ctx k ~release:true
              end
          | _ -> ());
      on_timer =
        (fun ctx ~label ->
          match String.split_on_char '#' label with
          | [ "arr"; k ] -> arrive ctx (int_of_string k)
          | [ "pat"; k ] ->
              let k = int_of_string k in
              let p = rpays.(k) in
              if (not p.rp_closed) && p.rp_admitted_at < 0 then begin
                p.rp_marked <- Some Rejected;
                close ctx k ~release:false
              end
          | [ "stuck"; k ] ->
              let k = int_of_string k in
              let p = rpays.(k) in
              if not p.rp_closed then
                if
                  p.rp_splits <> []
                  && p.rp_settled = List.length p.rp_splits
                then close ctx k ~release:true
                else begin
                  p.rp_marked <- Some Stuck;
                  (* settled splits give their unspent collateral back;
                     unsettled ones may still deposit, so their reserves
                     stay locked — mirroring the linear run *)
                  List.iter
                    (fun id ->
                      if insts.(id).i_settled_at >= 0 then sweep_instance id)
                    p.rp_splits;
                  close ctx k ~release:false
                end
          | _ -> ())
    }
  in
  let cpid =
    Engine.add_process engine ~clock:Clock.perfect ~label:"sched" controller
  in
  assert (cpid = 0);
  (* --- instance blocks: handlers are configured at admission, so every
     process starts as a buffering shell that comes alive on Start --- *)
  let clock_rng = Rng.create ~seed:(seed + 31) in
  let wrap_routed ~id ~l ~abs ~skew =
    let started = ref false in
    let reported = ref false in
    let buffered = ref [] in
    let inner = ref Engine.silent in
    let after_inner ctx =
      if
        !started
        && l <= insts.(id).i_hops
        && (not !reported)
        && Engine.is_halted engine abs
      then begin
        reported := true;
        Engine.send_absolute ctx ~dst:0 (Msg.Traffic_done { payment = id })
      end
    in
    {
      Engine.on_start = (fun _ -> ());
      on_receive =
        (fun ctx ~src msg ->
          match msg with
          | Msg.Start ->
              if not !started then (
                match insts.(id).i_handlers with
                | Some mk when l < insts.(id).i_bs ->
                    started := true;
                    let num, den = Clock.rate (Engine.clock_of engine abs) in
                    Engine.set_clock engine ~pid:abs
                      (Clock.create ~l0:skew ~g0:(Engine.now engine) ~num
                         ~den ());
                    let h = mk l in
                    inner := h;
                    h.Engine.on_start ctx;
                    let pending = List.rev !buffered in
                    buffered := [];
                    List.iter
                      (fun (src, m) ->
                        if not (Engine.is_halted engine abs) then
                          h.Engine.on_receive ctx ~src m)
                      pending;
                    after_inner ctx
                | _ -> ())
          | _ ->
              if !started then begin
                !inner.Engine.on_receive ctx ~src msg;
                after_inner ctx
              end
              else buffered := (src, msg) :: !buffered);
      on_timer =
        (fun ctx ~label ->
          if !started then begin
            !inner.Engine.on_timer ctx ~label;
            after_inner ctx
          end);
    }
  in
  for id = 0 to instances - 1 do
    let base = 1 + (id * stride) in
    for l = 0 to stride - 1 do
      let clock = Clock.random clock_rng ~drift_ppm:w.drift_ppm in
      let skew = Rng.int clock_rng 1001 in
      (* the path (hence the role layout) is unknown until admission *)
      let label = if l = 0 then "alice" else "node" in
      ignore
        (Engine.add_process engine ~clock ~base ~label
           (wrap_routed ~id ~l ~abs:(base + l) ~skew))
    done
  done;
  List.iter
    (fun (c : Faults.Fault_plan.crash_spec) ->
      for id = 0 to instances - 1 do
        Engine.schedule_crash engine
          ~pid:(1 + (id * stride) + c.pid)
          ~at:c.at ?recover_at:c.recover_at ()
      done)
    plan.Faults.Fault_plan.crashes;
  (* Online checks: per-edge-book conservation (the post-hoc audit,
     re-evaluated per dispatch) and liquidity-never-exceeded — the
     funder account is each edge's spendable liquidity, so a negative
     funder balance means reservations overdrew the edge. *)
  (match monitor with
  | None -> ()
  | Some m ->
      Obsv.Monitor.register m ~name:"M" (fun () ->
          let bad = ref None in
          Array.iteri
            (fun e b ->
              if
                !bad = None
                && not
                     ((match Ledger.Book.audit b with
                      | Ok () -> true
                      | Error _ -> false)
                     && List.for_all
                          (fun (_, bal) -> bal >= 0)
                          (Ledger.Book.accounts b))
              then
                bad :=
                  Some
                    (Printf.sprintf
                       "shared edge book %d failed its conservation audit" e))
            ebooks;
          !bad);
      Obsv.Monitor.register m ~name:"LIQ" (fun () ->
          let bad = ref None in
          for e = 0 to nedges - 1 do
            if !bad = None && avail e < 0 then
              bad :=
                Some
                  (Printf.sprintf "edge %d overdrew its liquidity by %d" e
                     (-avail e))
          done;
          !bad));
  (match sampler with
  | None -> ()
  | Some s ->
      let columns =
        "queue_depth" :: "in_flight" :: "admitted"
        :: List.init nedges (Printf.sprintf "edge%d_liquidity")
      in
      Obsv.Sampler.set_probe s ~columns (fun () ->
          Array.init (3 + nedges) (fun i ->
              match i with
              | 0 -> Engine.queue_depth engine
              | 1 -> !in_flight
              | 2 -> !admitted
              | i -> avail (i - 3))));
  let status = Engine.run ~horizon ~max_events engine in
  let end_time = Engine.now engine in
  (* --- classification: a payment commits iff every split paid Bob --- *)
  let violations = ref [] in
  let liquidity_rejections = ref 0 in
  let partial_payments = ref 0 in
  let no_route_rejections = ref 0 in
  let exposed_at ~lo ~hi lp =
    List.exists
      (fun (c : Faults.Fault_plan.crash_spec) ->
        c.pid = lp && c.at <= hi
        && match c.recover_at with None -> true | Some r -> r >= lo)
      plan.Faults.Fault_plan.crashes
  in
  let classify k =
    let p = rpays.(k) in
    if p.rp_marked = Some Rejected || p.rp_admitted_at < 0 then begin
      if p.rp_no_route then incr no_route_rejections;
      Rejected
    end
    else begin
      let viols = ref [] in
      let add property detail =
        viols := { payment = k; property; detail } :: !viols
      in
      let all_paid = ref true in
      let all_settled = ref true in
      let any_paid = ref false in
      List.iter
        (fun id ->
          let ins = insts.(id) in
          let h = ins.i_hops in
          let lo = if p.rp_admitted_at >= 0 then p.rp_admitted_at else 0 in
          let hi = if ins.i_settled_at >= 0 then ins.i_settled_at else end_time in
          let exposed lp = exposed_at ~lo ~hi lp in
          let abides ci =
            (not (exposed ci))
            && (ci = 0 || not (exposed (h + ci)))
            && (ci = h || not (exposed (h + 1 + ci)))
          in
          List.iter
            (fun (who, what) ->
              let liq = is_liquidity_rejection what in
              if liq then incr liquidity_rejections;
              let excused =
                exposed who || (who >= 0 && who <= h && not (abides who))
              in
              if not excused then
                add "C"
                  (Printf.sprintf "split %d pid %d rejected: %s" id who what))
            ins.i_rejections;
          if
            p.rp_proto <> Workload.Htlc && ins.i_terms.(0) && abides 0
            && ins.i_flows.(0) < 0
            && not ins.i_alice_cert
          then
            add "CS1"
              (Printf.sprintf "split %d: alice paid %d without a certificate"
                 id (-ins.i_flows.(0)));
          if
            ins.i_terms.(h) && abides h && ins.i_bob_cert_issued
            && ins.i_paid_at < 0
          then
            add "CS2"
              (Printf.sprintf
                 "split %d: bob issued a certificate but was not paid" id);
          for ci = 1 to h - 1 do
            if ins.i_terms.(ci) && abides ci && ins.i_flows.(ci) < 0 then
              add "CS3"
                (Printf.sprintf "split %d: connector %d lost %d" id ci
                   (-ins.i_flows.(ci)))
          done;
          if ins.i_paid_at < 0 then all_paid := false else any_paid := true;
          let settled_for_abort = ref true in
          for ci = 0 to h do
            if not (ins.i_terms.(ci) || exposed ci) then
              settled_for_abort := false
          done;
          if not !settled_for_abort then all_settled := false)
        p.rp_splits;
      if !viols <> [] then begin
        violations := !viols @ !violations;
        Violated
      end
      else if !all_paid && p.rp_splits <> [] then Committed
      else if !all_settled then begin
        if !any_paid then incr partial_payments;
        Aborted
      end
      else Stuck
    end
  in
  let outcomes = Array.init w.payments classify in
  let conservation_ok =
    Array.for_all
      (fun b ->
        (match Ledger.Book.audit b with Ok () -> true | Error _ -> false)
        && List.for_all (fun (_, bal) -> bal >= 0) (Ledger.Book.accounts b))
      ebooks
  in
  if not conservation_ok then
    violations :=
      {
        payment = -1;
        property = "ES/M";
        detail = "a shared edge book failed its conservation audit";
      }
      :: !violations;
  let count o =
    Array.fold_left (fun a x -> if x = o then a + 1 else a) 0 outcomes
  in
  let pay_latency k =
    List.fold_left
      (fun acc id -> max acc insts.(id).i_paid_at)
      0 rpays.(k).rp_splits
    - rpays.(k).rp_arrived_at
  in
  let latencies =
    let l = ref [] in
    Array.iteri
      (fun k o -> if o = Committed then l := pay_latency k :: !l)
      outcomes;
    let a = Array.of_list !l in
    Array.sort compare a;
    a
  in
  let committed = count Committed in
  let committed_value = ref 0 in
  let instances_committed = ref 0 in
  let instances_settled = ref 0 in
  Array.iter
    (fun ins ->
      if ins.i_active then begin
        if ins.i_paid_at >= 0 then begin
          incr instances_committed;
          committed_value := !committed_value + ins.i_value
        end;
        if ins.i_settled_at >= 0 then incr instances_settled
      end)
    insts;
  (* per-split blame: every paid split gets its own critical path from the
     payment's arrival note to its own payout — partial outcomes stay
     attributable per path *)
  let blame_reports =
    match causal with
    | None -> []
    | Some c ->
        let acc = ref [] in
        for id = instances - 1 downto 0 do
          let k = id / max_splits in
          if
            insts.(id).i_active
            && insts.(id).i_paid_at >= 0
            && roots.(k) >= 0
            && ipaid_nodes.(id) >= 0
          then
            acc :=
              ( id,
                Obsv.Blame.attribute ~delta:(delta + sigma) c ~root:roots.(k)
                  ~sink:ipaid_nodes.(id) )
              :: !acc
        done;
        !acc
  in
  let blame =
    match causal with
    | None -> None
    | Some _ -> Some (Obsv.Blame.aggregate (List.map snd blame_reports))
  in
  let active_instances =
    Array.fold_left (fun a ins -> if ins.i_active then a + 1 else a) 0 insts
  in
  let routing_stats =
    {
      topology = Routing.Topology.to_string rtopo;
      strategy = RR.strategy_name w.route;
      max_splits;
      offered_value = w.payments * w.value;
      committed_value = !committed_value;
      paths_selected = !total_paths;
      split_payments = !split_payments;
      partial_payments = !partial_payments;
      no_route_rejections = !no_route_rejections;
      instances = active_instances;
      instances_committed = !instances_committed;
      instances_settled = !instances_settled;
    }
  in
  let report =
    {
      workload = w;
      seed;
      plan = Faults.Fault_plan.to_string plan;
      status =
        (match status with
        | Engine.Quiescent -> "quiescent"
        | Engine.Horizon_reached -> "horizon"
        | Engine.Event_limit -> "event-limit"
        | Engine.Violation_stop -> "violation-stop");
      admitted = !admitted;
      committed;
      aborted = count Aborted;
      rejected = count Rejected;
      stuck = count Stuck;
      violated = count Violated;
      violations = List.rev !violations;
      liquidity_rejections = !liquidity_rejections;
      conservation_ok;
      latency_p50 = percentile latencies 50;
      latency_p95 = percentile latencies 95;
      latency_p99 = percentile latencies 99;
      latency_max =
        (if Array.length latencies = 0 then 0
         else latencies.(Array.length latencies - 1));
      makespan = end_time;
      throughput_cpm =
        (if end_time = 0 then 0 else committed * 1_000_000 / end_time);
      messages = !messages;
      max_in_flight = !max_in_flight;
      trace_dropped = Trace.dropped_count (Engine.trace engine);
      by_protocol =
        List.map
          (fun (pr, _) ->
            let assigned = ref 0 and comm = ref 0 in
            Array.iteri
              (fun k o ->
                if protos.(k) = pr then begin
                  incr assigned;
                  if o = Committed then incr comm
                end)
              outcomes;
            (Workload.proto_name pr, !assigned, !comm))
          w.mix;
      blame;
      blame_reports;
      routing = Some routing_stats;
      committee_stats = None;
      events = Engine.events_processed engine;
      wall_ns = max 1 (Fleet.now_ns () - wall_t0);
    }
  in
  (* --- telemetry --- *)
  let reg = Obsv.Metrics.default in
  List.iter
    (fun (pr, _) ->
      List.iter
        (fun o ->
          let n =
            Array.fold_left ( + ) 0
              (Array.mapi
                 (fun k x -> if protos.(k) = pr && x = o then 1 else 0)
                 outcomes)
          in
          if n > 0 then
            Obsv.Metrics.add
              (Obsv.Metrics.counter reg ~help:"Load-run payment outcomes"
                 ~labels:
                   [
                     ("protocol", Workload.proto_name pr);
                     ("outcome", outcome_name o);
                   ]
                 "xchain_load_payments_total")
              n)
        [ Committed; Aborted; Rejected; Stuck; Violated ])
    w.mix;
  Array.iteri
    (fun k o ->
      if o = Committed then
        Obsv.Metrics.observe
          (Obsv.Metrics.histogram reg
             ~help:"Commit latency (arrival to Bob's payout), ticks"
             ~labels:[ ("protocol", Workload.proto_name protos.(k)) ]
             "xchain_load_commit_latency")
          (pay_latency k))
    outcomes;
  Obsv.Metrics.set
    (Obsv.Metrics.gauge reg ~help:"Peak concurrently admitted payments"
       "xchain_load_in_flight_max")
    !max_in_flight;
  if !total_paths > 0 then
    Obsv.Metrics.add
      (Obsv.Metrics.counter reg ~help:"Paths selected by the payment router"
         ~labels:[ ("strategy", RR.strategy_name w.route) ]
         "xchain_route_paths_total")
      !total_paths;
  if !split_payments > 0 then
    Obsv.Metrics.add
      (Obsv.Metrics.counter reg
         ~help:"Payments split across multiple disjoint paths"
         "xchain_route_split_payments_total")
      !split_payments;
  if !no_route_rejections > 0 then
    Obsv.Metrics.add
      (Obsv.Metrics.counter reg
         ~help:"Payments rejected because no route could carry them"
         "xchain_route_no_route_total")
      !no_route_rejections;
  if !committed_value > 0 then
    Obsv.Metrics.add
      (Obsv.Metrics.counter reg
         ~help:"Value committed end-to-end across all splits"
         "xchain_route_committed_value_total")
      !committed_value;
  let spans = Obsv.Span.default in
  if Obsv.Span.capture spans then begin
    let root =
      Obsv.Span.start spans ~name:"load"
        ~attrs:
          [
            ("payments", string_of_int w.payments);
            ("seed", string_of_int seed);
          ]
        ~at:0 ()
    in
    Array.iteri
      (fun k o ->
        let p = rpays.(k) in
        let s =
          Obsv.Span.start spans ~parent:root ~name:"payment"
            ~attrs:
              [
                ("id", string_of_int k);
                ("protocol", Workload.proto_name p.rp_proto);
              ]
            ~trace_id:(if Option.is_none causal then -1 else k * max_splits)
            ~root_event:roots.(k)
            ~at:(max 0 p.rp_arrived_at) ()
        in
        let settled_at =
          List.fold_left
            (fun acc id -> max acc insts.(id).i_settled_at)
            (-1) p.rp_splits
        in
        Obsv.Span.finish ~status:(outcome_name o)
          ~at:
            (if settled_at >= 0 && o <> Stuck then settled_at
             else if o = Stuck then horizon
             else end_time)
          s)
      outcomes;
    Obsv.Span.finish ~status:report.status ~at:end_time root
  end;
  report

let run ?plan ?trace_capacity ?causal ?prof ?monitor ?sampler ?recorder
    ~(workload : Workload.t) ~seed () =
  (match Workload.validate workload with
  | Ok () -> ()
  | Error e -> invalid_arg ("Load.run: " ^ e));
  match workload.Workload.topology with
  | None ->
      run_linear ?plan ?trace_capacity ?causal ?prof ?monitor ?sampler
        ?recorder ~workload ~seed ()
  | Some rtopo ->
      run_routed ?plan ?trace_capacity ?causal ?prof ?monitor ?sampler
        ?recorder ~workload ~seed ~rtopo ()

(* ------------------------------- output ------------------------------- *)

let to_json r =
  let b = Buffer.create 1024 in
  let str s = Buffer.add_string b ("\"" ^ Obsv.Metrics.json_escape s ^ "\"") in
  Buffer.add_string b "{\"workload\":";
  str (Workload.to_string r.workload);
  Printf.bprintf b ",\"seed\":%d,\"plan\":" r.seed;
  str r.plan;
  Buffer.add_string b ",\"status\":";
  str r.status;
  Printf.bprintf b
    ",\"payments\":%d,\"admitted\":%d,\"committed\":%d,\"aborted\":%d,\"rejected\":%d,\"stuck\":%d,\"violated\":%d"
    r.workload.Workload.payments r.admitted r.committed r.aborted r.rejected
    r.stuck r.violated;
  Printf.bprintf b ",\"liquidity_rejections\":%d,\"conservation_ok\":%b"
    r.liquidity_rejections r.conservation_ok;
  Printf.bprintf b
    ",\"latency\":{\"p50\":%d,\"p95\":%d,\"p99\":%d,\"max\":%d}" r.latency_p50
    r.latency_p95 r.latency_p99 r.latency_max;
  Printf.bprintf b
    ",\"makespan\":%d,\"throughput_cpm\":%d,\"messages\":%d,\"events\":%d,\"max_in_flight\":%d,\"trace_dropped\":%d"
    r.makespan r.throughput_cpm r.messages r.events r.max_in_flight
    r.trace_dropped;
  Buffer.add_string b ",\"by_protocol\":[";
  List.iteri
    (fun i (name, assigned, committed) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"protocol\":\"%s\",\"assigned\":%d,\"committed\":%d}"
        name assigned committed)
    r.by_protocol;
  Buffer.add_string b "],\"violations\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"payment\":%d,\"property\":" v.payment;
      str v.property;
      Buffer.add_string b ",\"detail\":";
      str v.detail;
      Buffer.add_char b '}')
    r.violations;
  Buffer.add_char b ']';
  (* only present on causally-traced runs, so untraced reports stay
     byte-identical to earlier releases *)
  Option.iter
    (fun agg ->
      Buffer.add_string b ",\"blame\":";
      Buffer.add_string b (Obsv.Blame.agg_to_json agg))
    r.blame;
  (* only present on graph workloads, so linear reports stay byte-identical
     to earlier releases *)
  Option.iter
    (fun (s : routing_stats) ->
      Buffer.add_string b ",\"routing\":{\"topology\":";
      str s.topology;
      Buffer.add_string b ",\"strategy\":";
      str s.strategy;
      Printf.bprintf b
        ",\"max_splits\":%d,\"offered_value\":%d,\"committed_value\":%d,\"paths_selected\":%d,\"split_payments\":%d,\"partial_payments\":%d,\"no_route_rejections\":%d,\"instances\":%d,\"instances_committed\":%d,\"instances_settled\":%d}"
        s.max_splits s.offered_value s.committed_value s.paths_selected
        s.split_payments s.partial_payments s.no_route_rejections s.instances
        s.instances_committed s.instances_settled)
    r.routing;
  (* only present on shared-committee workloads, so other reports stay
     byte-identical to earlier releases *)
  Option.iter
    (fun (s : committee_stats) ->
      Printf.bprintf b
        ",\"committee\":{\"certs\":%d,\"verdicts\":%d,\"max_batch\":%d,\"rounds\":%d,\"cert_lat_sum\":%d,\"cert_lat_max\":%d}"
        s.certs s.verdicts s.max_batch s.rounds s.cert_lat_sum s.cert_lat_max)
    r.committee_stats;
  (* wall-clock timing is the one nondeterministic member; it comes last
     so byte-identity checks can strip it (scripts/strip_timing.py) *)
  Printf.bprintf b ",\"timing\":{\"wall_ns\":%d,\"events_per_sec\":%d}"
    r.wall_ns
    (int_of_float (float_of_int r.events /. (float_of_int r.wall_ns /. 1e9)));
  Buffer.add_char b '}';
  Buffer.contents b

let pp_summary ppf r =
  Fmt.pf ppf "@[<v>load: %a@," Workload.pp r.workload;
  Fmt.pf ppf "seed %d, plan %s, engine %s@," r.seed r.plan r.status;
  Fmt.pf ppf
    "payments %d: committed %d, aborted %d, rejected %d, stuck %d, violated \
     %d@,"
    r.workload.Workload.payments r.committed r.aborted r.rejected r.stuck
    r.violated;
  Fmt.pf ppf "liquidity rejections %d, conservation %s@," r.liquidity_rejections
    (if r.conservation_ok then "ok" else "BROKEN");
  Fmt.pf ppf "latency ticks p50 %d, p95 %d, p99 %d, max %d@," r.latency_p50
    r.latency_p95 r.latency_p99 r.latency_max;
  Fmt.pf ppf "makespan %d ticks, throughput %d commits/Mtick, peak in-flight %d@,"
    r.makespan r.throughput_cpm r.max_in_flight;
  Option.iter
    (fun (s : routing_stats) ->
      Fmt.pf ppf "routing %s over %s: %d paths, %d split, %d partial@,"
        s.strategy s.topology s.paths_selected s.split_payments
        s.partial_payments;
      Fmt.pf ppf
        "  value %d/%d committed, %d/%d instances paid, %d no-route@,"
        s.committed_value s.offered_value s.instances_committed s.instances
        s.no_route_rejections)
    r.routing;
  Option.iter
    (fun (s : committee_stats) ->
      Fmt.pf ppf
        "committee: %d certs, %d verdicts, max batch %d, %d rounds, cert \
         latency mean %d max %d@,"
        s.certs s.verdicts s.max_batch s.rounds
        (if s.certs = 0 then 0 else s.cert_lat_sum / s.certs)
        s.cert_lat_max)
    r.committee_stats;
  List.iter
    (fun (name, assigned, committed) ->
      Fmt.pf ppf "  %-10s %d assigned, %d committed@," name assigned committed)
    r.by_protocol;
  List.iter
    (fun v ->
      Fmt.pf ppf "  VIOLATION pay=%d %s: %s@," v.payment v.property v.detail)
    r.violations;
  Fmt.pf ppf "@]"
