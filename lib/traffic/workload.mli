(** Workload specifications for multi-payment load runs.

    A workload is pure data: how many payments, over which topology, which
    protocol mix, how they arrive, and under which admission policy they
    contend for the shared escrow liquidity. {!Load} turns a workload plus
    a seed into one deterministic engine run.

    Workloads serialize to a one-line [key=value] grammar so a load report
    can embed its exact spec and every run replays bit-for-bit:

    {v
    payments=1000 hops=2 value=1000 commission=10 arrival=poisson:40
    mix=sync:1,weak:1 policy=reserve cap=64 liquidity=0 patience=2000
    stuck=0 drift=10000 gst=none
    v} *)

type arrival =
  | Poisson of { gap : int }
      (** open loop: inter-arrival gaps are 1 + Exp(gap) ticks *)
  | Closed of { clients : int; think : int }
      (** closed loop: [clients] clients, each issuing its next payment
          [think] ticks after its previous one settles *)
  | Burst of { size : int; every : int }
      (** [size] simultaneous arrivals every [every] ticks *)
  | Ramp of { gap_hi : int; gap_lo : int }
      (** open loop with the mean gap shrinking linearly from [gap_hi]
          (first arrival) to [gap_lo] (last): a ramp-up to peak rate *)

type proto = Sync | Naive | Htlc | Weak_single | Committee | Shared | Atomic
(** [Shared] runs the weak protocol with {e no} per-payment TM: all shared
    payments in the run send their funded reports and abort requests to
    one external batching notary committee (the workload's [committee]
    spec), whose certificates cover many payments at once. *)

type committee = {
  c_family : string;  (** ["majority"], ["weighted"] or ["grid"] *)
  c_size : int;  (** replicas (grid: must be a perfect square) *)
  c_f : int;  (** Byzantine fault bound the quorum system tolerates *)
  c_batch : int;  (** max verdicts per certificate *)
  c_pipeline : int;  (** max concurrently undecided slots *)
  c_faulty : int;
      (** replicas actually failed in the run (crash-silent), placed at
          indices [1 .. c_faulty] — never the sequencer; <= [c_f] *)
}
(** The shared committee's shape — pure data; [Load] builds the validated
    {!Quorum_system.t} from it. *)

type policy =
  | Reserve
      (** admission reserves every leg's amount on the payer accounts, so
          in-protocol deposits never fail; contention shows up as queueing
          and admission rejections. Safe for every protocol. *)
  | Optimistic
      (** admission checks nothing; deposits race for the shared balances
          and losers see real [Insufficient_funds] rejections. Only legal
          for funding-checked protocols (weak, committee, atomic, htlc)
          whose escrows stop a leg on a failed deposit. *)

type t = {
  payments : int;
  hops : int;
  value : int;
  commission : int;
  arrival : arrival;
  mix : (proto * int) list;  (** protocol weights; must be non-empty *)
  policy : policy;
  cap : int;  (** max payments in flight per escrow; 0 = unlimited *)
  liquidity : int;
      (** payer-account funding, in multiples of one payment's leg amount;
          0 = [payments] (ample — no liquidity contention) *)
  patience : int;
      (** ticks an arrived payment may wait in the admission queue before
          it is rejected *)
  stuck_after : int;
      (** ticks after admission before an unsettled payment is classified
          stuck; 0 = derived from the mix's protocol horizons *)
  drift_ppm : int;
  gst : int option;  (** [Some g]: partially-synchronous network with GST g *)
  topology : Routing.Topology.t option;
      (** [Some t]: payments route source→sink over the escrow graph [t]
          instead of the linear [hops] chain (which [t] then supersedes);
          liquidity and commissions come from the graph's edges. [None]
          preserves the linear behavior bit-for-bit. *)
  route : Routing.Router.strategy;
      (** path-selection strategy under a graph topology *)
  splits : int;
      (** max edge-disjoint paths one payment may split across; 1 =
          single-path routing *)
  committee : committee option;
      (** the shared batching committee; required iff [Shared] is in the
          mix, linear workloads only *)
}

val default : payments:int -> t
(** 2 hops, value 1000, commission 10, poisson gap 40, mix [sync:1],
    reserve policy, unlimited cap, ample liquidity, patience 2000,
    derived stuck deadline, drift 10000 ppm, synchronous network, no
    topology (linear), shortest-cost routing, 1 split. *)

val proto_name : proto -> string
val proto_of_string : string -> (proto, string) result
val pp_proto : Format.formatter -> proto -> unit

val arrival_of_string : string -> (arrival, string) result
(** [poisson:GAP], [closed:CLIENTS:THINK], [burst:SIZE:EVERY] or
    [ramp:HI:LO]. *)

val mix_of_string : string -> ((proto * int) list, string) result
(** Comma-separated [name:weight] entries; a bare name means weight 1. *)

val policy_of_string : string -> (policy, string) result

val committee_of_string : string -> (committee, string) result
(** [family:size:f:batch:pipeline[:faulty]]; [faulty] defaults to 0. *)

val committee_to_string : committee -> string
val validate_committee : committee -> (unit, string) result

val validate : t -> (unit, string) result
(** Structural sanity plus the policy/protocol compatibility rules:
    [Optimistic] forbids [Sync]/[Naive] in the mix (their escrows barrel
    ahead on a failed deposit), [Naive] requires [drift_ppm = 0] (the
    naive protocol is only correct without drift — E3's point), and a
    graph [topology] requires [Reserve] (routed admission reserves each
    split's legs against per-edge liquidity) with the [liquidity] knob
    left at 0 (edge liquidity lives in the topology spec). *)

val to_string : t -> string
(** The one-line grammar above; [of_string (to_string w)] = [Ok w] up to
    topology normalization. The [topology=]/[route=]/[splits=] keys are
    printed only when a topology is set, and [committee=] only when a
    shared committee is configured, so existing workloads keep their
    historical spec lines byte-for-byte. *)

val of_string : string -> (t, string) result

val assign_mix : t -> seed:int -> proto array
(** The per-payment protocol assignment: deterministic weighted draws,
    one per payment, from a stream seeded by [seed] alone. *)

val arrivals : t -> seed:int -> int array option
(** Open-loop arrival ticks per payment (monotone), or [None] for the
    closed-loop arrival process (arrival times are settle-driven).
    Deterministic in [seed]. *)

val pp : Format.formatter -> t -> unit
