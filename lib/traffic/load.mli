(** The load scheduler: thousands of concurrent payments in one engine run.

    {!run} multiplexes [workload.payments] payment instances over a single
    {!Sim.Engine} run. All instances share one topology's escrow hosts and
    — crucially — one {!Ledger.Book} per escrow, so they contend for the
    same liquidity. Each instance gets its own block of engine pids at
    [base = 1 + k * stride]; protocol handlers written for a standalone
    payment run unmodified inside a block thanks to the engine's pid
    rebasing ({!Sim.Engine.add_process}).

    Pid 0 is the load controller: it owns the arrival process, the
    admission queue (per-escrow liquidity reservations and the in-flight
    cap), the per-payment patience and stuck deadlines, and settlement
    bookkeeping. Control traffic ([start] / [traffic-done]) is delivered
    at the network model's lower bound and is exempt from fault tampering,
    so a fault plan shakes the payments, never the harness.

    Every payment is classified on exit and checked against the safety
    subset that survives multiplexing: C (no honest rejection), CS1–CS3
    (certified settlement for Alice / Bob / connectors, conditioned on
    termination and crash exposure exactly like {!Props.Payment_props}),
    plus global conservation over the shared books. HTLC instances skip
    CS1 — the protocol violates it by design (experiment E10). *)

type outcome = Committed | Aborted | Rejected | Stuck | Violated

val outcome_name : outcome -> string

type violation = {
  payment : int;  (** -1 for global (cross-payment) violations *)
  property : string;  (** "C", "CS1", "CS2", "CS3" or "ES/M" *)
  detail : string;
}

type routing_stats = {
  topology : string;  (** canonical {!Routing.Topology.to_string} form *)
  strategy : string;  (** ["shortest"] or ["round-robin"] *)
  max_splits : int;
  offered_value : int;  (** payments × value *)
  committed_value : int;
      (** value that reached a sink across all paid splits — partially
          committed payments count their paid splits here even though the
          payment itself is not [Committed] *)
  paths_selected : int;  (** path choices summed over admissions *)
  split_payments : int;  (** payments admitted over more than one path *)
  partial_payments : int;
      (** aborted payments where at least one split still paid Bob *)
  no_route_rejections : int;
      (** rejected because no disjoint path set could carry the value *)
  instances : int;  (** protocol instances actually started *)
  instances_committed : int;
  instances_settled : int;
}
(** Router-level accounting for graph workloads; see {!report.routing}. *)

type committee_stats = {
  certs : int;  (** batch certificates the sequencer decided *)
  verdicts : int;  (** payment verdicts across all certificates *)
  max_batch : int;  (** largest single certificate *)
  rounds : int;
      (** DLS rounds summed over decided slots; slot_count = certs when
          every slot decided in round 0 *)
  cert_lat_sum : int;
      (** slot-open → certificate ticks summed over decided slots (mean =
          [cert_lat_sum / certs]) *)
  cert_lat_max : int;
}
(** Deterministic shared-committee accounting, read from the sequencer's
    {!Quorum.Committee} state after the run; see {!report.committee_stats}. *)

type report = {
  workload : Workload.t;
  seed : int;
  plan : string;  (** the fault plan's grammar line; ["none"] if empty *)
  status : string;  (** engine exit: quiescent / horizon / event-limit *)
  admitted : int;
  committed : int;
  aborted : int;
  rejected : int;  (** never admitted: queue patience ran out *)
  stuck : int;  (** admitted but unsettled at the stuck deadline *)
  violated : int;
  violations : violation list;
  liquidity_rejections : int;
      (** in-protocol [Insufficient_funds] deposit failures (optimistic
          policy); these are contention, not safety violations *)
  conservation_ok : bool;  (** every shared book audits clean *)
  latency_p50 : int;
  latency_p95 : int;
  latency_p99 : int;
  latency_max : int;
      (** commit latency: arrival (incl. queueing) to Bob's payout; 0 when
          nothing committed *)
  makespan : int;  (** global time when the engine stopped *)
  throughput_cpm : int;  (** committed payments per million ticks *)
  messages : int;  (** total sends, counted before any trace eviction *)
  max_in_flight : int;
  trace_dropped : int;  (** entries evicted by the bounded trace *)
  by_protocol : (string * int * int) list;
      (** (protocol, assigned, committed) in mix order *)
  blame : Obsv.Blame.agg option;
      (** latency decomposition summed over committed payments (and,
          separately, the slowest 1%); [None] unless the run was causally
          traced *)
  blame_reports : (int * Obsv.Blame.report) list;
      (** per-committed-payment critical paths, [(payment, report)] in
          payment order; each report's [total] is exactly that payment's
          commit latency ([paid_at - arrived_at]) *)
  routing : routing_stats option;
      (** [Some] iff the workload set [topology=]; linear workloads leave
          this [None] and their reports byte-identical to pre-routing
          output. For routed runs, [blame_reports] keys are {e instance}
          ids (payment × max_splits + split index), one per paid split *)
  committee_stats : committee_stats option;
      (** [Some] iff the workload set [committee=]; other reports leave
          this [None] and stay byte-identical to pre-committee output *)
  events : int;
      (** engine events the run dequeued — deterministic, the numerator of
          the events/sec throughput figure *)
  wall_ns : int;
      (** host wall-clock nanoseconds the run took — the one
          {e nondeterministic} report member; it appears only in
          [to_json]'s trailing ["timing"] block, never in {!pp_summary} *)
}

val run :
  ?plan:Faults.Fault_plan.t ->
  ?trace_capacity:int ->
  ?causal:Obsv.Causal.t ->
  ?prof:Obsv.Prof.t ->
  ?monitor:Obsv.Monitor.t ->
  ?sampler:Obsv.Sampler.t ->
  ?recorder:Obsv.Recorder.t ->
  workload:Workload.t ->
  seed:int ->
  unit ->
  report
(** One deterministic load run: equal [(workload, seed, plan)] gives a
    bit-identical {!report}. Raises [Invalid_argument] on an invalid
    workload or a plan that does not validate against the block's logical
    pid space (plans address {e hosts} — logical pids [0 .. stride-1] —
    and apply to every payment block, because one crashed escrow host
    takes that escrow down for every payment that routes through it).

    Workloads with [topology = Some g] take the routed path instead: each
    payment is split by a {!Routing.Router} into up to [splits]
    edge-disjoint paths, every split runs the unmodified linear protocol
    over that path's per-edge books, admission reserves each leg's amount
    by transferring it from the edge's funder account (whose balance {e
    is} the edge's available liquidity), and closing a settled split
    sweeps the unspent reservation back. A payment commits iff {e every}
    split pays its sink; [report.routing] carries the router-level
    accounting, including partially-paid aborts. Linear workloads
    ([topology = None]) are dispatched to the original scheduler
    untouched.

    [trace_capacity] bounds the engine trace (default 4096; 0 keeps it
    unbounded). Accounting ingests trace records through a hook as they
    happen, so eviction never affects the report.

    Emits [xchain_load_*] metrics into {!Obsv.Metrics.default} and, when
    span capture is on, one root span plus a span per payment. Stuck
    payments' spans are force-closed with status ["stuck"] at the run's
    stuck horizon, never exported open-ended.

    [causal] arms happens-before recording in the engine (see
    {!Sim.Engine.create}): the scheduler stamps each payment's nodes with
    its index as the trace id, anchors a root note at every arrival and a
    [Queue]-edged note at every admission, and fills [report.blame] /
    [report.blame_reports] with the critical-path decomposition of every
    committed payment. Payment spans are then linked to the DAG via their
    [trace]/[root_event] fields. Tracing adds nodes, never events: the
    schedule, and hence every other report field, is unchanged.

    [monitor] arms online runtime verification (see {!Obsv.Monitor}):
    the scheduler registers the {e same} conservation audit the report's
    [conservation_ok] runs post-hoc — per shared book, plus (routed) a
    liquidity-never-exceeded check on every edge's funder account — as
    per-dispatch checks, so the monitor's final verdict agrees with the
    report by construction. A stop-on-violation monitor ends the run at
    the first breach with status ["violation-stop"]. [sampler] records a
    sim-time series per {!Obsv.Sampler} interval: queue depth, in-flight
    and admitted payments, and per-escrow pooled funds (per-edge
    liquidity for routed workloads). [recorder] keeps the flight-recorder
    event ring for forensic bundles. None of the three changes the
    schedule.

    [prof] arms the dispatch profiler (see {!Sim.Engine.create}).
    Processes are labeled by role — ["sched"] (the controller),
    ["alice"], ["chloe"], ["bob"], ["escrow"], ["aux"] (TMs/notaries),
    ["idle"] (pid-space padding) — and, combined with [causal],
    dispatches attribute to individual payments. Like tracing, profiling
    never changes the schedule or the report. *)

val to_json : report -> string
(** Stable field order, integers and escaped strings only — byte-identical
    across runs with equal inputs {e except} the trailing ["timing"]
    member (wall_ns, events_per_sec), which reports host wall clock.
    Byte-identity checks strip it first (scripts/strip_timing.py; the
    cram suite does the same with [sed]). *)

val pp_summary : Format.formatter -> report -> unit
(** Human-readable multi-line summary for the CLI. *)
