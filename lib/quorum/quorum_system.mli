(** Byzantine quorum systems: which subsets of a committee may certify
    a consensus step, under a declared fault bound.

    A value of type {!t} describes processes [0 .. size t - 1] together
    with a fault bound [f] and a family-specific quorum rule. The two
    laws every usable system must satisfy —

    - {e intersection}: any two quorums share at least [f+1] processes
      (so conflicting certificates would need a correct signer on both);
    - {e availability}: some quorum contains no faulty process (so the
      correct processes can always assemble a certificate) —

    reduce to closed-form inequalities for each family and are checked
    by {!validate}. Consumers ({!Consensus.Dls}, the committee runner)
    refuse systems that fail it. *)

type t =
  | Majority of { n : int; f : int; q : int }
      (** any [q] of [n] processes; [q] defaults to [2f+1] *)
  | Weighted of { weights : int array; f : int; threshold : int }
      (** any set of total weight >= [threshold]; weights positive *)
  | Grid of { rows : int; cols : int; f : int; qr : int; qc : int }
      (** process [i] sits at row [i / cols], column [i mod cols]; a
          quorum needs [qr] fully-present rows and [qc] fully-present
          columns *)

val majority : ?q:int -> n:int -> f:int -> unit -> t
(** [q] defaults to [2f+1] — the classic [n = 3f+1] committee rule. *)

val weighted : ?threshold:int -> weights:int array -> f:int -> unit -> t
(** [threshold] defaults to just over two thirds of the total weight.
    The weight array is copied. *)

val grid : ?qr:int -> ?qc:int -> rows:int -> cols:int -> f:int -> unit -> t
(** [qr] and [qc] default to the smallest side with
    [qr * qc >= f + 1]. *)

val size : t -> int
(** Number of processes the system speaks about. *)

val fault_bound : t -> int
(** The declared [f]. *)

val mem : t -> int -> bool
(** Membership: [mem t i] iff [i] indexes a process of the system. *)

val is_quorum : t -> present:bool array -> bool
(** Does the set [{i | present.(i)}] contain a quorum? [present] must
    have length [size t].

    @raise Invalid_argument on a wrong-length array. *)

val intersection_ok : t -> bool
(** Any two quorums intersect in at least [fault_bound t + 1]
    processes (closed form, see the family notes above). *)

val availability_ok : t -> bool
(** Some quorum survives any [fault_bound t] faults. *)

val validate : t -> (unit, string) result
(** Structural checks (positive sizes and weights, thresholds in
    range) plus both quorum laws. *)

val min_quorum_card : t -> int
(** Cardinality of a smallest quorum — certificate size, and the
    number of signatures a batched decision carries. *)

val family_name : t -> string
(** ["majority"], ["weighted"] or ["grid"]. *)

val describe : t -> string
(** One-line rendering with all parameters, e.g.
    ["majority(n=4,f=1,q=3)"]. *)

val pp : Format.formatter -> t -> unit

val top_f_weight : int array -> int -> int
(** Sum of the [f] largest weights — what a worst-case adversary can
    sign with. Exposed for tests and sweep reporting. *)
