(* Batched, pipelined notary committee.

   One committee of replicas (any validated quorum system) decides an
   ordered stream of payment verdicts. Verdicts are grouped into
   batches; each batch is decided by one single-shot DLS instance — a
   "slot". Slots are pipelined: slot s+1 is proposed while slot s's
   commit votes are still gathering, up to a configured depth, so the
   certificate rate is bounded by throughput, not by round-trip
   latency.

   Replica 0 is the sequencer: it drains pending requests into batches
   and opens slots (it is also every slot's round-0 leader, since
   [Dls.leader_of ~n 0 = 0]). Followers join a slot when its first
   message arrives and echo structurally valid batches. If the
   sequencer fails mid-slot the slot's DLS view change takes over as
   usual; a crashed sequencer stops new slots from opening — sequencer
   fail-over is out of scope here (the traffic harness runs honest
   committees; Byzantine *members* are exercised through the
   weak-protocol notary paths).

   External validity is structural only (well-formed batch: non-empty,
   within cap, distinct items). Whether an individual verdict is
   justified (all legs funded / abort requested) is the host's business
   — followers may not have seen the evidence the sequencer acted on,
   and validity divergence between replicas would cost liveness. The
   certificate a decided slot carries is the real interface: quorum
   signatures over the full batch, checkable by any outsider holding
   the committee registry. *)

module Dls = Consensus.Dls
open Xcrypto

type verdict = { item : int; commit : bool }
type batch = verdict list

type config = {
  qs : Quorum_system.t;
  self : int;
  auth_ids : int array;
  registry : Auth.registry;
  signer : Auth.signer;
  batch_cap : int;  (* max verdicts per certificate *)
  pipeline : int;  (* max concurrently undecided slots *)
  base_timeout : Sim.Sim_time.t;
}

type msg = { slot : int; dm : batch Dls.msg }

type effect =
  | Send of { to_ : int; m : msg }
  | Broadcast of msg
  | Set_slot_timer of { slot : int; round : int; after : Sim.Sim_time.t }
  | Certified of { slot : int; cert : batch Dls.decision_cert }

type slot_state = {
  dls : batch Dls.t;
  opened_at : Sim.Sim_time.t;
  mutable closed : bool;
}

type item_status =
  | Queued
  | In_flight of { slot : int; v : verdict }
  | Decided_item of { commit : bool; slot : int }

type t = {
  cfg : config;
  slots : (int, slot_state) Hashtbl.t;
  mutable next_slot : int;  (* sequencer only *)
  mutable open_slots : int;  (* undecided slots this replica knows *)
  pending : verdict Queue.t;
  status : (int, item_status) Hashtbl.t;  (* by item *)
  certs : (int, batch Dls.decision_cert) Hashtbl.t;  (* by slot *)
  lat : (int, Sim.Sim_time.t) Hashtbl.t;  (* slot open -> certificate *)
}

(* Registered at module init so the committee families appear in the
   catalogue before any committee runs; shared by every committee in the
   process, like the consensus families. *)
let m_requests =
  Obsv.Metrics.counter Obsv.Metrics.default
    ~help:"Verdict requests accepted by committee sequencers"
    "xchain_committee_requests_total"

let m_certs =
  Obsv.Metrics.counter Obsv.Metrics.default
    ~help:"Batch certificates assembled (slots decided)"
    "xchain_committee_certs_total"

let m_occupancy =
  Obsv.Metrics.histogram Obsv.Metrics.default
    ~help:"Verdicts per batch certificate"
    "xchain_committee_batch_occupancy"

let m_rounds =
  Obsv.Metrics.histogram Obsv.Metrics.default
    ~help:"Consensus rounds needed per certificate (1 = round 0)"
    "xchain_committee_rounds_to_certify"

let m_latency =
  Obsv.Metrics.histogram Obsv.Metrics.default
    ~help:"Sim-time from slot open to certificate"
    "xchain_committee_cert_latency"

let ser_verdict v =
  Printf.sprintf "%d:%c" v.item (if v.commit then 'c' else 'a')

let ser_batch b = "b|" ^ String.concat "," (List.map ser_verdict b)

let verdict_equal a b = a.item = b.item && a.commit = b.commit

let batch_equal a b =
  List.length a = List.length b && List.for_all2 verdict_equal a b

let valid_batch cfg b =
  b <> []
  && List.length b <= cfg.batch_cap
  && List.for_all (fun v -> v.item >= 0) b
  &&
  let seen = Hashtbl.create 8 in
  List.for_all
    (fun v ->
      if Hashtbl.mem seen v.item then false
      else begin
        Hashtbl.add seen v.item ();
        true
      end)
    b

let dls_cfg cfg =
  {
    Dls.qs = cfg.qs;
    self = cfg.self;
    auth_ids = cfg.auth_ids;
    registry = cfg.registry;
    signer = cfg.signer;
    ser = ser_batch;
    equal = batch_equal;
    validate = (fun b -> valid_batch cfg b);
    base_timeout = cfg.base_timeout;
  }

let create cfg =
  (match Quorum_system.validate cfg.qs with
  | Ok () -> ()
  | Error e -> invalid_arg ("Committee.create: " ^ e));
  if cfg.batch_cap < 1 then invalid_arg "Committee.create: batch_cap < 1";
  if cfg.pipeline < 1 then invalid_arg "Committee.create: pipeline < 1";
  {
    cfg;
    slots = Hashtbl.create 32;
    next_slot = 0;
    open_slots = 0;
    pending = Queue.create ();
    status = Hashtbl.create 64;
    certs = Hashtbl.create 32;
    lat = Hashtbl.create 32;
  }

let is_sequencer t = t.cfg.self = 0
let verify_cert cfg dc = Dls.verify_decision (dls_cfg cfg) dc

let verdict_of t ~item =
  match Hashtbl.find_opt t.status item with
  | Some (Decided_item { commit; slot }) -> Some (commit, slot)
  | _ -> None

let cert_of_slot t slot = Hashtbl.find_opt t.certs slot
let cert_latency t slot = Hashtbl.find_opt t.lat slot
let decided_slots t = Hashtbl.length t.certs
let slot_count t = t.next_slot

let wrap slot effs =
  List.filter_map
    (fun eff ->
      match eff with
      | Dls.Send { to_; m } -> Some (Send { to_; m = { slot; dm = m } })
      | Dls.Broadcast m -> Some (Broadcast { slot; dm = m })
      | Dls.Set_round_timer { round; after } ->
          Some (Set_slot_timer { slot; round; after })
      | Dls.Decided _ ->
          (* handled by the caller, which sees the decision via [decided] *)
          None)
    effs

(* Close a decided slot: record every verdict, requeue in-flight items
   the decided batch does not cover (a view change can decide a batch
   proposed by a different replica), and free a pipeline lane. *)
let close_slot t ~now slot st (dc : batch Dls.decision_cert) =
  st.closed <- true;
  t.open_slots <- t.open_slots - 1;
  Hashtbl.replace t.certs slot dc;
  List.iter
    (fun v ->
      Hashtbl.replace t.status v.item
        (Decided_item { commit = v.commit; slot }))
    dc.Dls.d_value;
  Hashtbl.iter
    (fun item status ->
      match status with
      | In_flight { slot = s; v }
        when s = slot
             && not (List.exists (fun d -> d.item = item) dc.Dls.d_value) ->
          Hashtbl.replace t.status item Queued;
          Queue.add v t.pending
      | _ -> ())
    t.status;
  Hashtbl.replace t.lat slot (Sim.Sim_time.sub now st.opened_at);
  Obsv.Metrics.inc m_certs;
  Obsv.Metrics.observe m_occupancy (List.length dc.Dls.d_value);
  Obsv.Metrics.observe m_rounds (dc.Dls.d_round + 1);
  Obsv.Metrics.observe m_latency (Sim.Sim_time.sub now st.opened_at);
  [ Certified { slot; cert = dc } ]

(* Sequencer: open new slots while there is demand and pipeline room. *)
let rec try_open t ~now =
  if
    (not (is_sequencer t))
    || t.open_slots >= t.cfg.pipeline
    || Queue.is_empty t.pending
  then []
  else begin
    let rec take k acc =
      if k = 0 || Queue.is_empty t.pending then List.rev acc
      else
        let v = Queue.pop t.pending in
        (* an item may have been decided while queued (requeue races) *)
        match Hashtbl.find_opt t.status v.item with
        | Some (Decided_item _) -> take k acc
        | _ -> take (k - 1) (v :: acc)
    in
    let batch = take t.cfg.batch_cap [] in
    if batch = [] then []
    else begin
      let slot = t.next_slot in
      t.next_slot <- slot + 1;
      t.open_slots <- t.open_slots + 1;
      List.iter
        (fun v -> Hashtbl.replace t.status v.item (In_flight { slot; v }))
        batch;
      let st =
        { dls = Dls.create (dls_cfg t.cfg); opened_at = now; closed = false }
      in
      Hashtbl.replace t.slots slot st;
      let effs = wrap slot (Dls.start st.dls ~my_value:batch) in
      (* evaluation order matters: a degenerate quorum can decide inside
         [start], and only after that decision is folded in (freeing its
         pipeline lane) may further slots open *)
      let decided = drain_decision t ~now slot st in
      let opened = try_open t ~now in
      effs @ decided @ opened
    end
  end

(* A 1-replica committee (or a degenerate quorum) can decide inside the
   very call that started the slot; fold that decision in uniformly. *)
and drain_decision t ~now slot st =
  match Dls.decided st.dls with
  | Some dc when not st.closed ->
      (* close first — [@] would evaluate right to left, and [try_open]
         must see the freed pipeline lane or a fully-bursty sequencer
         (all requests already queued, none still arriving) never opens
         another slot *)
      let closed = close_slot t ~now slot st dc in
      let opened = try_open t ~now in
      closed @ opened
  | _ -> []

let request t ~now v =
  match Hashtbl.find_opt t.status v.item with
  | Some _ -> []  (* first verdict per item wins; duplicates are dropped *)
  | None ->
      Obsv.Metrics.inc m_requests;
      Hashtbl.replace t.status v.item Queued;
      Queue.add v t.pending;
      try_open t ~now

let slot_for t ~now slot =
  match Hashtbl.find_opt t.slots slot with
  | Some st -> (st, [])
  | None ->
      (* a follower dragged into a slot by peer traffic: join without a
         preference (the sequencer proposes; we echo and vote) *)
      let st =
        { dls = Dls.create (dls_cfg t.cfg); opened_at = now; closed = false }
      in
      Hashtbl.replace t.slots slot st;
      t.open_slots <- t.open_slots + 1;
      if slot >= t.next_slot then t.next_slot <- slot + 1;
      (st, wrap slot (Dls.join st.dls))

let on_msg t ~now ~from_ m =
  let st, join_effs = slot_for t ~now m.slot in
  let effs = wrap m.slot (Dls.on_msg st.dls ~from_ m.dm) in
  join_effs @ effs @ drain_decision t ~now m.slot st

let on_slot_timeout t ~now ~slot ~round =
  match Hashtbl.find_opt t.slots slot with
  | None -> []
  | Some st ->
      let effs = wrap slot (Dls.on_round_timeout st.dls round) in
      effs @ drain_decision t ~now slot st

let tag_of_msg m =
  match m.dm with
  | Dls.Propose _ -> "quorum:propose"
  | Dls.Echo _ -> "quorum:echo"
  | Dls.Commit _ -> "quorum:commit"
  | Dls.New_round _ -> "quorum:new-round"

let pp_msg ppf m = Format.fprintf ppf "%s[s%d]" (tag_of_msg m) m.slot
