(* Byzantine quorum systems.

   A quorum system over processes {0 .. size-1} with a declared fault
   bound f names which subsets of processes ("quorums") are allowed to
   certify a consensus step. Correctness of quorum-based consensus rests
   on two laws (Malkhi–Reiter's masking/dissemination conditions
   specialised to signed messages):

   - intersection: any two quorums share at least f+1 processes, so two
     conflicting certificates would need a correct process to sign both;
   - availability: some quorum contains no faulty process, so the
     correct processes alone can always make progress.

   Three families are provided. Each is described by a handful of
   integers, so both laws reduce to closed-form inequalities checked by
   [validate] — no subset enumeration anywhere:

   - [Majority]: every >= q of n processes is a quorum. Two quorums
     overlap in >= 2q - n processes; the adversary can place all f
     faults inside an overlap, so intersection needs 2q - n >= f + 1.
     Availability needs n - f >= q. The classic n = 3f+1, q = 2f+1
     satisfies both with equality.

   - [Weighted]: processes carry positive integer weights; a quorum is
     any set of total weight >= threshold T out of W total. Overlap
     weight is >= 2T - W; the adversary covers overlap weight with the
     f heaviest processes (weight top_f), so intersection needs
     2T - W > top_f. Availability needs W - top_f >= T.

   - [Grid]: processes form a rows x cols grid (index = r*cols + c); a
     quorum needs qr fully-present rows and qc fully-present columns.
     One quorum's rows cross the other's columns in qr*qc distinct
     processes, so intersection needs qr * qc >= f + 1. Killing one
     process kills at most one row and one column, so availability
     needs rows - f >= qr and cols - f >= qc. Quorum size grows as
     O(sqrt(size)) — the point of the family. *)

type t =
  | Majority of { n : int; f : int; q : int }
  | Weighted of { weights : int array; f : int; threshold : int }
  | Grid of { rows : int; cols : int; f : int; qr : int; qc : int }

let majority ?q ~n ~f () =
  let q = match q with Some q -> q | None -> (2 * f) + 1 in
  Majority { n; f; q }

let weighted ?threshold ~weights ~f () =
  let total = Array.fold_left ( + ) 0 weights in
  (* default threshold mirrors 2f+1 of 3f+1: just over two thirds *)
  let threshold =
    match threshold with Some t -> t | None -> ((2 * total) / 3) + 1
  in
  Weighted { weights = Array.copy weights; f; threshold }

let isqrt_ceil x =
  (* smallest s with s*s >= x, for the tiny x used as quorum sides *)
  let rec go s = if s * s >= x then s else go (s + 1) in
  if x <= 0 then 0 else go 1

let grid ?qr ?qc ~rows ~cols ~f () =
  let side = max 1 (isqrt_ceil (f + 1)) in
  let qr = match qr with Some v -> v | None -> side in
  let qc = match qc with Some v -> v | None -> side in
  Grid { rows; cols; f; qr; qc }

let size = function
  | Majority { n; _ } -> n
  | Weighted { weights; _ } -> Array.length weights
  | Grid { rows; cols; _ } -> rows * cols

let fault_bound = function
  | Majority { f; _ } | Weighted { f; _ } | Grid { f; _ } -> f

let mem t i = i >= 0 && i < size t

let family_name = function
  | Majority _ -> "majority"
  | Weighted _ -> "weighted"
  | Grid _ -> "grid"

let describe = function
  | Majority { n; f; q } -> Printf.sprintf "majority(n=%d,f=%d,q=%d)" n f q
  | Weighted { weights; f; threshold } ->
      Printf.sprintf "weighted(n=%d,f=%d,threshold=%d,total=%d)"
        (Array.length weights) f threshold
        (Array.fold_left ( + ) 0 weights)
  | Grid { rows; cols; f; qr; qc } ->
      Printf.sprintf "grid(%dx%d,f=%d,qr=%d,qc=%d)" rows cols f qr qc

(* sum of the f largest weights — what the adversary can sign with *)
let top_f_weight weights f =
  let sorted = Array.copy weights in
  Array.sort (fun a b -> compare b a) sorted;
  let acc = ref 0 in
  for i = 0 to min f (Array.length sorted) - 1 do
    acc := !acc + sorted.(i)
  done;
  !acc

let intersection_ok = function
  | Majority { n; f; q } -> (2 * q) - n >= f + 1
  | Weighted { weights; f; threshold } ->
      let total = Array.fold_left ( + ) 0 weights in
      (2 * threshold) - total > top_f_weight weights f
  | Grid { f; qr; qc; _ } -> qr * qc >= f + 1

let availability_ok = function
  | Majority { n; f; q } -> n - f >= q
  | Weighted { weights; f; threshold } ->
      let total = Array.fold_left ( + ) 0 weights in
      total - top_f_weight weights f >= threshold
  | Grid { rows; cols; f; qr; qc } -> rows - f >= qr && cols - f >= qc

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let structural =
    match t with
    | Majority { n; f; q } ->
        if n <= 0 then err "majority: n must be positive"
        else if f < 0 then err "majority: f must be >= 0"
        else if q <= 0 || q > n then err "majority: need 0 < q <= n"
        else Ok ()
    | Weighted { weights; f; threshold } ->
        let total = Array.fold_left ( + ) 0 weights in
        if Array.length weights = 0 then err "weighted: no processes"
        else if Array.exists (fun w -> w <= 0) weights then
          err "weighted: weights must be positive"
        else if f < 0 then err "weighted: f must be >= 0"
        else if threshold <= 0 || threshold > total then
          err "weighted: need 0 < threshold <= total weight"
        else Ok ()
    | Grid { rows; cols; f; qr; qc } ->
        if rows <= 0 || cols <= 0 then err "grid: empty grid"
        else if f < 0 then err "grid: f must be >= 0"
        else if qr <= 0 || qr > rows then err "grid: need 0 < qr <= rows"
        else if qc <= 0 || qc > cols then err "grid: need 0 < qc <= cols"
        else Ok ()
  in
  match structural with
  | Error _ as e -> e
  | Ok () ->
      if not (intersection_ok t) then
        err "%s: quorums may intersect in fewer than f+1 = %d processes"
          (describe t)
          (fault_bound t + 1)
      else if not (availability_ok t) then
        err "%s: no quorum survives %d faults" (describe t) (fault_bound t)
      else Ok ()

let is_quorum t ~present =
  if Array.length present <> size t then
    invalid_arg "Quorum_system.is_quorum: present array has the wrong length";
  match t with
  | Majority { q; _ } ->
      let c = ref 0 in
      Array.iter (fun p -> if p then incr c) present;
      !c >= q
  | Weighted { weights; threshold; _ } ->
      let w = ref 0 in
      Array.iteri (fun i p -> if p then w := !w + weights.(i)) present;
      !w >= threshold
  | Grid { rows; cols; qr; qc; _ } ->
      let full_rows = ref 0 in
      for r = 0 to rows - 1 do
        let full = ref true in
        for c = 0 to cols - 1 do
          if not present.((r * cols) + c) then full := false
        done;
        if !full then incr full_rows
      done;
      let full_cols = ref 0 in
      for c = 0 to cols - 1 do
        let full = ref true in
        for r = 0 to rows - 1 do
          if not present.((r * cols) + c) then full := false
        done;
        if !full then incr full_cols
      done;
      !full_rows >= qr && !full_cols >= qc

let min_quorum_card = function
  | Majority { q; _ } -> q
  | Weighted { weights; threshold; _ } ->
      (* greedily cover the threshold with the heaviest processes *)
      let sorted = Array.copy weights in
      Array.sort (fun a b -> compare b a) sorted;
      let w = ref 0 and k = ref 0 in
      while !w < threshold && !k < Array.length sorted do
        w := !w + sorted.(!k);
        incr k
      done;
      !k
  | Grid { rows; cols; qr; qc; _ } ->
      (* qr rows and qc columns, minus the double-counted crossings *)
      (qr * cols) + (qc * rows) - (qr * qc)

let pp ppf t = Format.pp_print_string ppf (describe t)
