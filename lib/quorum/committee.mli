(** Batched, pipelined notary committee over {!Consensus.Dls}.

    One committee — any validated {!Quorum_system.t} — decides a stream
    of payment verdicts. Verdicts batch into {e slots}; each slot is one
    single-shot DLS instance deciding an ordered [batch], and slots are
    pipelined up to a configured depth so slot [s+1] is proposed while
    slot [s]'s commit votes gather. One certificate therefore covers up
    to [batch_cap] payments — Herlihy–Liskov–Shrira-style cross-chain
    deal batching applied to the paper's notary committee.

    Replica 0 is the sequencer: it queues incoming verdict requests,
    drains them into batches, and opens slots (it is also every slot's
    round-0 leader). Followers join slots lazily on first peer message
    and apply structural validity only (well-formed batch) — per-item
    justification is the host's business, and the decision certificate
    is what outsiders verify.

    Like {!Consensus.Dls}, this is a pure state machine returning
    effects; the host supplies the current sim-time [now] (for
    certificate-latency accounting) and routes messages/timers. *)

module Dls = Consensus.Dls

type verdict = { item : int; commit : bool }
(** One payment's fate: [item] is a host-chosen non-negative id. *)

type batch = verdict list

type config = {
  qs : Quorum_system.t;  (** must pass [Quorum_system.validate] *)
  self : int;  (** this replica's index in [0 .. size qs - 1] *)
  auth_ids : int array;  (** Auth identity of each replica index *)
  registry : Xcrypto.Auth.registry;
  signer : Xcrypto.Auth.signer;
  batch_cap : int;  (** max verdicts per certificate; >= 1 *)
  pipeline : int;  (** max concurrently undecided slots; >= 1 *)
  base_timeout : Sim.Sim_time.t;  (** per-slot DLS round-0 timeout *)
}

type msg = { slot : int; dm : batch Dls.msg }

type effect =
  | Send of { to_ : int; m : msg }  (** [to_] is a replica index *)
  | Broadcast of msg  (** to every replica, including self *)
  | Set_slot_timer of { slot : int; round : int; after : Sim.Sim_time.t }
      (** ask the host to call {!on_slot_timeout} after [after] ticks *)
  | Certified of { slot : int; cert : batch Dls.decision_cert }
      (** this replica assembled (or received) the slot's decision *)

type t

val create : config -> t
(** @raise Invalid_argument on an invalid quorum system or degenerate
    batching parameters. *)

val is_sequencer : t -> bool
(** Replica 0 — the one that opens slots. *)

val request : t -> now:Sim.Sim_time.t -> verdict -> effect list
(** Submit one verdict. The first verdict per item wins; duplicates
    (including conflicting ones) return []. On the sequencer this may
    open one or more slots immediately. *)

val on_msg : t -> now:Sim.Sim_time.t -> from_:int -> msg -> effect list
(** [from_] is the authentic sender's replica index. *)

val on_slot_timeout : t -> now:Sim.Sim_time.t -> slot:int -> round:int -> effect list

val verdict_of : t -> item:int -> (bool * int) option
(** The decided fate of an item, with the slot that certified it. *)

val cert_of_slot : t -> int -> batch Dls.decision_cert option

val cert_latency : t -> int -> Sim.Sim_time.t option
(** Ticks from this replica opening the slot to its certificate, for a
    decided slot. *)

val decided_slots : t -> int
val slot_count : t -> int
(** Slots this replica has seen opened (decided or not). *)

val verify_cert : config -> batch Dls.decision_cert -> bool
(** Outsider verification: quorum signatures over the batch. Only
    [qs], [auth_ids], [registry] matter; [self]/[signer] are unused. *)

val ser_batch : batch -> string
(** The signing serialization, exposed for tests. *)

val batch_equal : batch -> batch -> bool

val tag_of_msg : msg -> string
(** ["quorum:propose" | "quorum:echo" | "quorum:commit" |
    "quorum:new-round"] — for engine message tagging. *)

val pp_msg : Format.formatter -> msg -> unit
