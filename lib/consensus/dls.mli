(** Single-shot Byzantine consensus for partial synchrony.

    The paper (§3) proposes implementing the weak protocol's transaction
    manager as "a collection of notaries … of which less than one-third is
    assumed to be unreliable. They would run a consensus algorithm for
    partial synchrony such as the one from Dwork, Lynch & Stockmeyer."

    This module is that algorithm, in the DLS tradition as refined by
    PBFT/Tendermint, parametrized over a {!Quorum_system.t} rather than a
    hardwired [2f + 1]-of-[3f + 1] count: replicas proceed in rounds with
    a rotating leader. A round's leader proposes a value; replicas
    {e echo} it with a signature; a quorum of signed echoes (as judged by
    [Quorum_system.is_quorum] over the signer set) forms a {e quorum
    certificate} (QC) that locks the value and yields a signed {e commit}
    vote; a quorum of commit votes decides and itself forms a {e decision
    certificate} verifiable by outsiders (that is how the notary
    committee's χc / χa certificates are checked by escrows and
    customers). [Quorum_system.majority ~n:(3 * f + 1) ~f ()] recovers
    the classic thresholds exactly; weighted and grid systems change who
    must sign, not the protocol.

    Lock handling follows the DLS discipline that makes this safe under
    full asynchrony: a replica abandons a lock only when shown a valid QC
    for a conflicting value from a {e higher} round — and once a value is
    decided, no such QC can ever be assembled, because the [f + 1] honest
    replicas locked on the decided value refuse to echo anything else.
    Termination holds after GST with geometrically growing round timeouts:
    locks spread via [New_round] messages, so the first post-GST honest
    leader proposes the highest lock and every honest replica echoes it.

    The module is a {e pure state machine}: it consumes inputs and returns
    effects, so it can be driven by the simulator, by unit tests, or by
    adversarial schedules directly. *)

type round = int

type 'v echo_body = { e_round : round; e_value : 'v }
type 'v commit_body = { c_round : round; c_value : 'v }

type 'v qc = {
  q_round : round;
  q_value : 'v;
  q_sigs : 'v echo_body Xcrypto.Auth.signed list;
}
(** A quorum certificate: a quorum's worth of signed echoes for one
    (round, value). *)

type 'v decision_cert = {
  d_value : 'v;
  d_round : round;
  d_sigs : 'v commit_body Xcrypto.Auth.signed list;
}
(** A quorum's worth of signed commit votes: transferable proof that
    [d_value] was decided. *)

type 'v msg =
  | Propose of { round : round; value : 'v; justif : 'v qc option }
  | Echo of 'v echo_body Xcrypto.Auth.signed
  | Commit of 'v commit_body Xcrypto.Auth.signed
  | New_round of { round : round; locked : 'v qc option }

type 'v effect =
  | Send of { to_ : int; m : 'v msg }  (** [to_] is a replica index *)
  | Broadcast of 'v msg  (** to every replica, including self *)
  | Set_round_timer of { round : round; after : Sim.Sim_time.t }
      (** Ask the host to call {!on_round_timeout} for [round] after [after]
          local ticks. Stale timers (for past rounds) are ignored. *)
  | Decided of 'v decision_cert

type 'v config = {
  qs : Quorum_system.t;
      (** who may certify: replica indices are the quorum system's
          process indices; must pass [Quorum_system.validate] *)
  self : int;  (** this replica's index in [0 .. size qs - 1] *)
  auth_ids : int array;  (** Auth identity of each replica index *)
  registry : Xcrypto.Auth.registry;
  signer : Xcrypto.Auth.signer;  (** must match [auth_ids.(self)] *)
  ser : 'v -> string;  (** serialization of values for signing *)
  equal : 'v -> 'v -> bool;
  validate : 'v -> bool;  (** external validity of proposed values *)
  base_timeout : Sim.Sim_time.t;  (** round [r] times out after
                                      [base_timeout * 2^min(r,16)] *)
}

type 'v t

val create : 'v config -> 'v t
val leader_of : n:int -> round -> int

val start : 'v t -> my_value:'v -> 'v effect list
(** Begin round 0 with this replica's initial preference. *)

val join : 'v t -> 'v effect list
(** Begin participating (echoing, voting, running round timers) without a
    preference of one's own — for a replica dragged in by peer traffic
    before it has seen any trigger. It proposes nothing while
    preference-less. *)

val update_preference : 'v t -> 'v -> 'v effect list
(** Set (or change) the preference; if this replica leads the current round
    and has not proposed yet, it proposes now. A held lock still takes
    precedence when proposing. *)

val on_msg : 'v t -> from_:int -> 'v msg -> 'v effect list
(** [from_] is the authentic sender's replica index (channel
    authentication); forged signatures inside the message are detected and
    the message dropped. *)

val on_round_timeout : 'v t -> round -> 'v effect list

val decided : 'v t -> 'v decision_cert option
val current_round : 'v t -> round
val locked : 'v t -> 'v qc option

val verify_qc : 'v config -> 'v qc -> bool
(** For hosts and tests: the distinct valid replica signatures over the
    same (round, value) form a quorum of [cfg.qs]. *)

val verify_decision : 'v config -> 'v decision_cert -> bool
(** Verifiable by any outsider holding the registry and the committee
    roster — this is what makes the committee's decision a transferable
    certificate in the paper's sense. *)
