(** A minimal authority blockchain hosting a replicated smart contract —
    the paper's second transaction-manager instantiation ("a smart
    contract running on a permissionless blockchain shared by every
    customer").

    Model: [n] validators take turns proposing blocks, height [h]'s
    proposer being [h mod n]; a proposer packages its mempool into the
    next block; every validator appends the (unique) well-formed block
    for its current height. Clients submit transactions to all
    validators, so mempools converge and the designated proposer always
    has the pending work. One proposer per height means there is exactly
    one chain — every validator replays the same transaction sequence,
    which is what the customers' trust in "the blockchain" amounts to in
    the paper. (The chain itself is trusted infrastructure here; tolerance
    to {e unreliable} TM members is the notary committee's job, see
    {!Dls}.) Round timers merely pace production: a leader with pending
    transactions proposes at once, otherwise the tick is idle.

    The {e contract} is a deterministic state machine [apply] folded over
    the ordered transactions of accepted blocks; its emitted events are
    what the host broadcasts to subscribers. Determinism + a single chain
    = every validator derives the same events (the CC property for the
    chain-hosted TM falls out of exactly this).

    Like {!Dls}, the module is a pure state machine driven through
    effects, so the simulator, tests, and adversarial schedules can all
    host it. *)

type round = int

type 'tx block = {
  height : int;
  round : round;
  proposer : int;  (** validator index *)
  txs : 'tx list;
}

type 'tx msg =
  | Submit of 'tx  (** client → validator: mempool submission *)
  | Announce of 'tx block  (** validator → validators: a new block *)

type ('tx, 'ev) effect =
  | Broadcast of 'tx msg  (** to every validator, including self *)
  | Set_round_timer of { round : round; after : Sim.Sim_time.t }
  | Emit of 'ev list
      (** contract events from newly accepted transactions — the host
          forwards them to whoever subscribes *)

type ('tx, 'st, 'ev) config = {
  n : int;  (** validators *)
  self : int;
  block_interval : Sim.Sim_time.t;  (** round duration before a skip *)
  initial_state : 'st;
  apply : 'st -> 'tx -> 'st * 'ev list;
      (** MUST be deterministic and total; exceptions poison the chain *)
  tx_equal : 'tx -> 'tx -> bool;  (** dedupe for mempool and replay *)
}

type ('tx, 'st, 'ev) t

val create : ('tx, 'st, 'ev) config -> ('tx, 'st, 'ev) t

val start : ('tx, 'st, 'ev) t -> ('tx, 'ev) effect list
(** Arm round 0. *)

val on_msg :
  ('tx, 'st, 'ev) t -> from_:int option -> 'tx msg -> ('tx, 'ev) effect list
(** [from_] is the authentic sender's validator index, or [None] for
    client submissions. Announcements from non-validators are ignored. *)

val on_round_timeout :
  ('tx, 'st, 'ev) t -> round -> ('tx, 'ev) effect list

val height : ('tx, 'st, 'ev) t -> int
val state : ('tx, 'st, 'ev) t -> 'st
val mempool_size : ('tx, 'st, 'ev) t -> int
val chain : ('tx, 'st, 'ev) t -> 'tx block list
(** Accepted blocks, oldest first. *)
