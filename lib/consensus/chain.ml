type round = int

type 'tx block = {
  height : int;
  round : round;
  proposer : int;
  txs : 'tx list;
}

type 'tx msg = Submit of 'tx | Announce of 'tx block

type ('tx, 'ev) effect =
  | Broadcast of 'tx msg
  | Set_round_timer of { round : round; after : Sim.Sim_time.t }
  | Emit of 'ev list

type ('tx, 'st, 'ev) config = {
  n : int;
  self : int;
  block_interval : Sim.Sim_time.t;
  initial_state : 'st;
  apply : 'st -> 'tx -> 'st * 'ev list;
  tx_equal : 'tx -> 'tx -> bool;
}

type ('tx, 'st, 'ev) t = {
  cfg : ('tx, 'st, 'ev) config;
  mutable rev_chain : 'tx block list;  (* newest first *)
  mutable applied : 'tx list;  (* all txs already in the chain *)
  mutable mempool : 'tx list;  (* oldest first *)
  mutable round : round;
  mutable nheight : int;
  mutable future : 'tx block list;  (* blocks that arrived ahead of us *)
}

let create cfg =
  if cfg.n < 1 then invalid_arg "Chain.create: need a validator";
  if cfg.self < 0 || cfg.self >= cfg.n then invalid_arg "Chain.create: bad self";
  if Sim.Sim_time.(cfg.block_interval < 1) then
    invalid_arg "Chain.create: block_interval must be positive";
  {
    cfg;
    rev_chain = [];
    applied = [];
    mempool = [];
    round = 0;
    nheight = 0;
    future = [];
  }

let height t = t.nheight
let state t =
  List.fold_left
    (fun st tx -> fst (t.cfg.apply st tx))
    t.cfg.initial_state (List.rev t.applied)

let mempool_size t = List.length t.mempool
let chain t = List.rev t.rev_chain

let proposer_of t height = ((height mod t.cfg.n) + t.cfg.n) mod t.cfg.n

let known t tx =
  List.exists (t.cfg.tx_equal tx) t.applied
  || List.exists (t.cfg.tx_equal tx) t.mempool

let arm_round t round =
  Set_round_timer { round; after = t.cfg.block_interval }

(* Propose a block if we lead the current height. Empty blocks are
   skipped — the chain only grows when there is work, which keeps
   simulated runs quiescent. *)
let maybe_propose t =
  if proposer_of t t.nheight = t.cfg.self && t.mempool <> [] then
    let block =
      {
        height = t.nheight;
        round = t.round;
        proposer = t.cfg.self;
        txs = t.mempool;
      }
    in
    [ Broadcast (Announce block) ]
  else []

let start t = arm_round t 0 :: maybe_propose t

(* Apply a freshly accepted block's transactions to the replicated state,
   collecting contract events. Replay is incremental: [applied] carries the
   running prefix, so [state] can always be recomputed from scratch for
   audits while hosts receive events exactly once. *)
let accept t block =
  let fresh =
    List.filter (fun tx -> not (List.exists (t.cfg.tx_equal tx) t.applied))
      block.txs
  in
  let st = state t in
  let _, events =
    List.fold_left
      (fun (st, acc) tx ->
        let st', evs = t.cfg.apply st tx in
        (st', acc @ evs))
      (st, []) fresh
  in
  t.rev_chain <- { block with txs = fresh } :: t.rev_chain;
  t.applied <- List.rev_append (List.rev fresh) t.applied;
  t.mempool <-
    List.filter
      (fun tx -> not (List.exists (t.cfg.tx_equal tx) fresh))
      t.mempool;
  t.nheight <- t.nheight + 1;
  (* a block ends the current round: re-arm from the new height *)
  t.round <- t.round + 1;
  let effs = [ arm_round t t.round ] in
  let effs = if events = [] then effs else Emit events :: effs in
  effs @ maybe_propose t

(* A block can arrive before its predecessor (announcements travel on
   different channels); buffer it and retry after every acceptance. *)
let rec drain_future t acc =
  match
    List.partition (fun (b : 'tx block) -> b.height = t.nheight) t.future
  with
  | [], _ -> acc
  | ready :: _, rest ->
      t.future <- rest;
      if proposer_of t ready.height = ready.proposer && ready.txs <> [] then
        drain_future t (acc @ accept t ready)
      else drain_future t acc

let on_msg t ~from_ msg =
  match msg with
  | Submit tx ->
      if known t tx then []
      else begin
        t.mempool <- t.mempool @ [ tx ];
        (* a leader with work need not wait for its round tick *)
        maybe_propose t
      end
  | Announce block -> (
      match from_ with
      | None -> [] (* blocks must come from validators *)
      | Some v ->
          if v <> block.proposer then []
          else if block.height > t.nheight then begin
            t.future <- t.future @ [ block ];
            []
          end
          else if
            block.height = t.nheight
            && proposer_of t block.height = block.proposer
            && block.txs <> []
          then begin
            let effs = accept t block in
            drain_future t effs
          end
          else [])

let on_round_timeout t round =
  if round <> t.round then [] (* stale: a block already advanced us *)
  else begin
    t.round <- t.round + 1;
    arm_round t t.round :: maybe_propose t
  end
