open Xcrypto

type round = int
type 'v echo_body = { e_round : round; e_value : 'v }
type 'v commit_body = { c_round : round; c_value : 'v }

type 'v qc = {
  q_round : round;
  q_value : 'v;
  q_sigs : 'v echo_body Auth.signed list;
}

type 'v decision_cert = {
  d_value : 'v;
  d_round : round;
  d_sigs : 'v commit_body Auth.signed list;
}

type 'v msg =
  | Propose of { round : round; value : 'v; justif : 'v qc option }
  | Echo of 'v echo_body Auth.signed
  | Commit of 'v commit_body Auth.signed
  | New_round of { round : round; locked : 'v qc option }

type 'v effect =
  | Send of { to_ : int; m : 'v msg }
  | Broadcast of 'v msg
  | Set_round_timer of { round : round; after : Sim.Sim_time.t }
  | Decided of 'v decision_cert

type 'v config = {
  qs : Quorum_system.t;
  self : int;
  auth_ids : int array;
  registry : Auth.registry;
  signer : Auth.signer;
  ser : 'v -> string;
  equal : 'v -> 'v -> bool;
  validate : 'v -> bool;
  base_timeout : Sim.Sim_time.t;
}

(* Per-round vote books: for each round, per distinct value, the signed
   votes indexed by replica. *)
type ('v, 'body) votes = {
  mutable entries : ('v * (int, 'body Auth.signed) Hashtbl.t) list;
}

type 'v t = {
  cfg : 'v config;
  mutable round : round;
  mutable preference : 'v option;
  mutable lock : 'v qc option;
  mutable decision : 'v decision_cert option;
  echo_votes : (round, ('v, 'v echo_body) votes) Hashtbl.t;
  commit_votes : (round, ('v, 'v commit_body) votes) Hashtbl.t;
  mutable echoed : round list;  (* rounds in which we already echoed *)
  mutable committed : round list;
  mutable proposed : round list;
}

(* Registered at module init so the consensus families appear in the
   catalogue even before any committee runs; handles are shared by every
   Dls instance in the process (the registry is process-wide anyway). *)
let m_rounds =
  Obsv.Metrics.counter Obsv.Metrics.default
    ~help:"Consensus rounds entered (across all replicas)"
    "xchain_consensus_rounds_total"

let m_view_changes =
  Obsv.Metrics.counter Obsv.Metrics.default
    ~help:"Round timeouts that forced a view change"
    "xchain_consensus_view_changes_total"

let m_decisions =
  Obsv.Metrics.counter Obsv.Metrics.default
    ~help:"Decision certificates assembled" "xchain_consensus_decisions_total"

let m_rounds_to_decide =
  Obsv.Metrics.histogram Obsv.Metrics.default
    ~help:"Rounds needed to reach a decision (1 = decided in round 0)"
    "xchain_consensus_rounds_to_decide"

let committee_n cfg = Quorum_system.size cfg.qs

let leader_of ~n round = ((round mod n) + n) mod n

let ser_echo ser (b : 'v echo_body) =
  Printf.sprintf "echo|%d|%s" b.e_round (ser b.e_value)

let ser_commit ser (b : 'v commit_body) =
  Printf.sprintf "commit|%d|%s" b.c_round (ser b.c_value)

let is_replica_auth cfg author =
  Array.exists (fun id -> id = author) cfg.auth_ids

(* Replica index of an authenticated author, or -1. Quorum membership is
   index-based (weighted and grid systems care which replica signed, not
   just how many), so every signature set is reduced to a presence
   vector before asking the quorum system. *)
let replica_index cfg author =
  let n = Array.length cfg.auth_ids in
  let rec go i = if i >= n then -1 else if cfg.auth_ids.(i) = author then i else go (i + 1) in
  go 0

(* The single threshold predicate: does this set of signer indices
   contain a quorum of the configured system? *)
let indices_are_quorum cfg iter =
  let present = Array.make (committee_n cfg) false in
  iter (fun i -> if i >= 0 && i < Array.length present then present.(i) <- true);
  Quorum_system.is_quorum cfg.qs ~present

let verify_vote_set cfg ~ser_body ~round_of ~value_of ~want_round ~want_value
    sigs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (sv : _ Auth.signed) ->
      let b = sv.Auth.payload in
      if
        round_of b = want_round
        && cfg.equal (value_of b) want_value
        && is_replica_auth cfg sv.Auth.author
        && (not (Hashtbl.mem seen sv.Auth.author))
        && Auth.verify_value cfg.registry ~ser:ser_body sv
      then Hashtbl.add seen sv.Auth.author ())
    sigs;
  indices_are_quorum cfg (fun mark ->
      Hashtbl.iter (fun author () -> mark (replica_index cfg author)) seen)

let verify_qc cfg (qc : 'v qc) =
  verify_vote_set cfg
    ~ser_body:(ser_echo cfg.ser)
    ~round_of:(fun b -> b.e_round)
    ~value_of:(fun b -> b.e_value)
    ~want_round:qc.q_round ~want_value:qc.q_value qc.q_sigs

let verify_decision cfg (dc : 'v decision_cert) =
  verify_vote_set cfg
    ~ser_body:(ser_commit cfg.ser)
    ~round_of:(fun b -> b.c_round)
    ~value_of:(fun b -> b.c_value)
    ~want_round:dc.d_round ~want_value:dc.d_value dc.d_sigs

let create cfg =
  (match Quorum_system.validate cfg.qs with
  | Ok () -> ()
  | Error e -> invalid_arg ("Dls.create: " ^ e));
  let n = committee_n cfg in
  if cfg.self < 0 || cfg.self >= n then invalid_arg "Dls.create: bad self";
  if Array.length cfg.auth_ids <> n then
    invalid_arg "Dls.create: auth_ids size mismatch";
  if Auth.signer_id cfg.signer <> cfg.auth_ids.(cfg.self) then
    invalid_arg "Dls.create: signer does not match self";
  {
    cfg;
    round = 0;
    preference = None;
    lock = None;
    decision = None;
    echo_votes = Hashtbl.create 8;
    commit_votes = Hashtbl.create 8;
    echoed = [];
    committed = [];
    proposed = [];
  }

let decided t = t.decision
let current_round t = t.round
let locked t = t.lock

let round_timeout t round =
  let shift = Stdlib.min round 16 in
  Sim.Sim_time.scale t.cfg.base_timeout ~num:(1 lsl shift) ~den:1

let votes_for tbl round =
  match Hashtbl.find_opt tbl round with
  | Some v -> v
  | None ->
      let v = { entries = [] } in
      Hashtbl.add tbl round v;
      v

let bucket_for equal votes value =
  match List.find_opt (fun (v, _) -> equal v value) votes.entries with
  | Some (_, tbl) -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      votes.entries <- (value, tbl) :: votes.entries;
      tbl

(* The value this replica is willing to champion: its lock if any, else its
   initial preference. *)
let champion t =
  match t.lock with
  | Some qc -> Some qc.q_value
  | None -> t.preference

(* Propose only values we can stand behind: a locked value always (its QC
   is the justification), otherwise our preference only if it passes
   external validity — a notary with nothing valid to say stays silent and
   lets the round time out. *)
let propose_effects t =
  if List.mem t.round t.proposed then []
  else
    let value =
      match t.lock with
      | Some qc -> Some qc.q_value
      | None -> (
          match champion t with
          | Some v when t.cfg.validate v -> Some v
          | Some _ | None -> None)
    in
    match value with
    | None -> []
    | Some v ->
        t.proposed <- t.round :: t.proposed;
        let justif = t.lock in
        [ Broadcast (Propose { round = t.round; value = v; justif }) ]

let enter_round t round =
  if round <= t.round && round <> 0 then []
  else begin
    Obsv.Metrics.inc m_rounds;
    t.round <- Stdlib.max t.round round;
    let timer =
      Set_round_timer { round = t.round; after = round_timeout t t.round }
    in
    let lead =
      if leader_of ~n:(committee_n t.cfg) t.round = t.cfg.self then propose_effects t
      else []
    in
    (timer :: lead, ())
    |> fst
  end

let start t ~my_value =
  t.preference <- Some my_value;
  enter_round t 0

let join t = enter_round t 0

let update_preference t v =
  if t.decision <> None then []
  else begin
    t.preference <- Some v;
    if leader_of ~n:(committee_n t.cfg) t.round = t.cfg.self then propose_effects t
    else []
  end

(* Adopt a QC as our lock if it is higher than what we hold. *)
let maybe_adopt t (qc : 'v qc) =
  if verify_qc t.cfg qc then
    match t.lock with
    | Some cur when cur.q_round >= qc.q_round -> ()
    | _ -> t.lock <- Some qc

let may_echo t ~round:_ ~value ~justif =
  t.cfg.validate value
  &&
  match t.lock with
  | None -> true
  | Some lock_qc ->
      t.cfg.equal lock_qc.q_value value
      || (match justif with
         | Some (j : 'v qc) ->
             j.q_round > lock_qc.q_round
             && t.cfg.equal j.q_value value
             && verify_qc t.cfg j
         | None -> false)

let echo_effects t ~round ~value =
  if List.mem round t.echoed then []
  else begin
    t.echoed <- round :: t.echoed;
    let body = { e_round = round; e_value = value } in
    let signed =
      Auth.sign_value t.cfg.signer ~ser:(ser_echo t.cfg.ser) body
    in
    [ Broadcast (Echo signed) ]
  end

let commit_effects t ~round ~value =
  if List.mem round t.committed then []
  else begin
    t.committed <- round :: t.committed;
    let body = { c_round = round; c_value = value } in
    let signed =
      Auth.sign_value t.cfg.signer ~ser:(ser_commit t.cfg.ser) body
    in
    [ Broadcast (Commit signed) ]
  end

let collect_sigs tbl = Hashtbl.fold (fun _ sv acc -> sv :: acc) tbl []

let on_echo t (sv : 'v echo_body Auth.signed) =
  let b = sv.Auth.payload in
  if
    is_replica_auth t.cfg sv.Auth.author
    && Auth.verify_value t.cfg.registry ~ser:(ser_echo t.cfg.ser) sv
  then begin
    let votes = votes_for t.echo_votes b.e_round in
    let bucket = bucket_for t.cfg.equal votes b.e_value in
    Hashtbl.replace bucket sv.Auth.author sv;
    if
      indices_are_quorum t.cfg (fun mark ->
          Hashtbl.iter (fun author _ -> mark (replica_index t.cfg author)) bucket)
    then begin
      let qc =
        { q_round = b.e_round; q_value = b.e_value; q_sigs = collect_sigs bucket }
      in
      maybe_adopt t qc;
      if b.e_round = t.round then
        commit_effects t ~round:b.e_round ~value:b.e_value
      else []
    end
    else []
  end
  else []

let on_commit t (sv : 'v commit_body Auth.signed) =
  let b = sv.Auth.payload in
  if
    is_replica_auth t.cfg sv.Auth.author
    && Auth.verify_value t.cfg.registry ~ser:(ser_commit t.cfg.ser) sv
  then begin
    let votes = votes_for t.commit_votes b.c_round in
    let bucket = bucket_for t.cfg.equal votes b.c_value in
    Hashtbl.replace bucket sv.Auth.author sv;
    if
      t.decision = None
      && indices_are_quorum t.cfg (fun mark ->
             Hashtbl.iter
               (fun author _ -> mark (replica_index t.cfg author))
               bucket)
    then begin
      let dc =
        { d_value = b.c_value; d_round = b.c_round; d_sigs = collect_sigs bucket }
      in
      t.decision <- Some dc;
      Obsv.Metrics.inc m_decisions;
      Obsv.Metrics.observe m_rounds_to_decide (b.c_round + 1);
      [ Decided dc ]
    end
    else []
  end
  else []

let on_msg t ~from_ m =
  if t.decision <> None then []
  else
    match m with
    | Propose { round; value; justif } ->
        (match justif with Some qc -> maybe_adopt t qc | None -> ());
        if
          round = t.round
          && from_ = leader_of ~n:(committee_n t.cfg) round
          && may_echo t ~round ~value ~justif
        then echo_effects t ~round ~value
        else []
    | Echo sv -> on_echo t sv
    | Commit sv -> on_commit t sv
    | New_round { round; locked } -> (
        (match locked with Some qc -> maybe_adopt t qc | None -> ());
        (* Catch up if the network has moved past us. *)
        if round > t.round then
          let effs = enter_round t round in
          effs
        else if
          round = t.round && leader_of ~n:(committee_n t.cfg) t.round = t.cfg.self
        then
          (* late New_round may have raised our lock; nothing to re-send
             (we propose once per round), but if we have not proposed yet
             because we had no preference, try now. *)
          propose_effects t
        else [])

let on_round_timeout t round =
  if t.decision <> None || round <> t.round then []
  else begin
    Obsv.Metrics.inc m_view_changes;
    let next = t.round + 1 in
    let nr = New_round { round = next; locked = t.lock } in
    let effs = Broadcast nr :: enter_round t next in
    effs
  end
