(** Priority queue of timestamped events.

    A binary min-heap ordered by [(time, sequence number)]. The sequence
    number is assigned at insertion, so two events scheduled for the same
    tick pop in insertion order — this makes every engine run a deterministic
    function of its inputs, independent of heap internals. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:Sim_time.t -> 'a -> int
(** [push q ~time e] schedules [e] at [time] and returns a token that can be
    passed to {!cancel}. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Removes and returns the earliest live event. Cancelled events are
    silently discarded. *)

val peek_time : 'a t -> Sim_time.t option
(** Time of the earliest live event, without removing it. *)

val cancel : 'a t -> int -> bool
(** [cancel q token] marks the event with that token dead. Returns [false] if
    it has already popped or been cancelled. O(live+dead) worst case amortised
    O(log n): the entry is tombstoned and dropped lazily at pop. *)

val clear : 'a t -> unit

val drain : 'a t -> (Sim_time.t * 'a) list
(** Pops everything, in order. *)
