type t = int

let zero = 0
let infinity = max_int
let is_infinite t = t = max_int

let add a b =
  if a = max_int || b = max_int then max_int
  else
    let s = a + b in
    if s < 0 then max_int else s

let sub a b = if a = max_int then max_int else if a - b < 0 then 0 else a - b

(* ceil (t * num / den) without intermediate overflow for simulation-scale
   values: splits [t] into high and low parts around [den]. *)
let scale t ~num ~den =
  if den <= 0 then invalid_arg "Sim_time.scale: den must be positive";
  if num < 0 then invalid_arg "Sim_time.scale: num must be non-negative";
  if t = max_int then max_int
  else if num = 0 then 0
  else
    let q = t / den and r = t mod den in
    (* t*num/den = q*num + r*num/den; r < den so r*num is small when num is.
       Guard the multiplications explicitly. *)
    let mul_sat a b = if a <> 0 && b > max_int / a then max_int else a * b in
    let hi = mul_sat q num in
    let lo = mul_sat r num in
    let lo_q = (lo + den - 1) / den in
    add hi lo_q

let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b

let of_int n =
  if Stdlib.( < ) n 0 then invalid_arg "Sim_time.of_int: negative";
  n

let to_int t = t
let pp ppf t = if is_infinite t then Fmt.string ppf "inf" else Fmt.int ppf t
let to_string t = Fmt.str "%a" pp t
