(** Small summary-statistics toolkit for experiment reporting. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample. Raises [Invalid_argument] on [] and on
    samples containing NaN (which would otherwise silently mis-sort). *)

val summarize_int : int list -> summary

val percentile : float array -> float -> float
(** [percentile sorted p] with [p ∈ [0,100]]; linear interpolation between
    order statistics. The array must be sorted ascending. *)

val mean : float list -> float
val stddev : float list -> float

val rate : hits:int -> total:int -> float
(** [hits/total] as a percentage, 0 when [total = 0]. *)

val wilson : hits:int -> total:int -> float * float
(** 95% Wilson score interval for a binomial proportion, as percentages
    [(lo, hi)]. [(0, 100)] when [total = 0]. Experiment tables use it to
    report the uncertainty of violation/success rates. *)

val pp_summary : Format.formatter -> summary -> unit
