(** Deterministic discrete-event engine.

    Processes are event handlers over private mutable state (captured in the
    handler closures). The engine owns global time, each process owns a
    drifting local {!Clock}. Handlers can only read their {e local} clock —
    protocols are thereby forced to honour the paper's model, in which no
    participant sees real time.

    Execution is a deterministic function of (root RNG seed, network model,
    adversary, process set): the event queue breaks timestamp ties by
    insertion order and all randomness flows from seeded {!Rng} streams. *)

type ('msg, 'obs) ctx
(** Capabilities handed to a process while it is handling an event. *)

val pid : ('msg, 'obs) ctx -> int
(** The process's {e logical} pid: its engine pid minus the [base] offset
    it was registered with (so a multiplexed process sees the same pid
    layout as a standalone one). *)

val local_now : ('msg, 'obs) ctx -> Sim_time.t
(** The process's own clock reading — the only notion of time a protocol may
    use. *)

val send : ('msg, 'obs) ctx -> dst:int -> 'msg -> unit
(** Queue a message. It incurs a computation delay in [\[0, sigma\]] plus a
    network delay chosen by the network model / adversary. [dst] is a
    logical pid: the sender's [base] offset is added before resolution. *)

val send_absolute : ('msg, 'obs) ctx -> dst:int -> 'msg -> unit
(** Like {!send} but [dst] is an engine pid, ignoring the sender's [base].
    Control-plane escape hatch for multiplexer wrappers that must reach
    processes outside their own block (e.g. a load scheduler at pid 0). *)

val set_timer : ('msg, 'obs) ctx -> deadline:Sim_time.t -> label:string -> unit
(** Arm (or re-arm) the timer [label] to fire when the process's local clock
    reaches [deadline] (the paper's [now >= u + a] guard). Setting a timer
    with the same label replaces the previous one. *)

val set_timer_after :
  ('msg, 'obs) ctx -> after:Sim_time.t -> label:string -> unit
(** [set_timer_after ctx ~after] = [set_timer ~deadline:(local_now + after)]. *)

val cancel_timer : ('msg, 'obs) ctx -> label:string -> unit

val observe : ('msg, 'obs) ctx -> 'obs -> unit
(** Emit a domain observation into the trace (value moved, certificate
    issued, terminated, …). *)

val halt : ('msg, 'obs) ctx -> unit
(** Stop reacting to all future events (crash / graceful exit). *)

val rng : ('msg, 'obs) ctx -> Rng.t
(** A per-process random stream (split from the engine root seed). *)

type ('msg, 'obs) handlers = {
  on_start : ('msg, 'obs) ctx -> unit;
  on_receive : ('msg, 'obs) ctx -> src:int -> 'msg -> unit;
  on_timer : ('msg, 'obs) ctx -> label:string -> unit;
}

val silent : ('msg, 'obs) handlers
(** A process that does nothing — useful as a crash-from-start fault. *)

type ('msg, 'obs) t

val create :
  tag_of:('msg -> string) ->
  ?mangle:('msg -> Rng.t -> 'msg option) ->
  network:Network.t ->
  ?sigma:Sim_time.t ->
  ?metrics:Obsv.Metrics.t ->
  ?trace_capacity:int ->
  ?causal:Obsv.Causal.t ->
  ?prof:Obsv.Prof.t ->
  ?monitor:Obsv.Monitor.t ->
  ?sampler:Obsv.Sampler.t ->
  ?recorder:Obsv.Recorder.t ->
  seed:int ->
  unit ->
  ('msg, 'obs) t
(** [tag_of] labels messages for traces and for the adversary; [sigma] is the
    computation-time bound (default 0: instantaneous computation).

    [mangle] materialises in-flight corruption when the network's tamper
    hook marks a copy {!Network.Corrupted}: it receives the original
    message and the sender's random stream and returns the damaged payload,
    or [None] to discard the copy. Without a mangler, corrupted copies are
    discarded (authenticated channels: garbage fails verification at the
    receiver), counted in [xchain_corrupt_copies_dropped_total].

    [trace_capacity] bounds the engine trace as a ring buffer (see
    {!Trace.create}); omitted, the trace is unbounded as before.

    [metrics] (default {!Obsv.Metrics.default}) receives the engine's
    telemetry: [xchain_events_total], [xchain_messages_sent_total],
    [xchain_messages_delivered_total], [xchain_timers_set_total],
    [xchain_timers_fired_total], [xchain_timers_stale_total], the
    [xchain_event_queue_depth] gauge, and the fault-injection families
    [xchain_crashes_total], [xchain_recoveries_total], [xchain_procs_down],
    [xchain_deliveries_dropped_down_total], [xchain_timers_deferred_total]
    and [xchain_corrupt_copies_dropped_total]. Handles are resolved here,
    once; the per-event updates allocate nothing.

    [causal] (default: absent — zero cost) arms happens-before recording:
    the engine appends one {!Obsv.Causal} node per send, deliver, timer
    arm, live firing, crash and recovery, with program-order edges along
    each pid, [Message] edges from every send to its deliveries, [Timer]
    edges from each arming to its live firing, and [Outage] edges
    crash → recover → any firing the outage deferred. Deliveries dropped
    at a down process and stale firings record {e no} node, so every
    deliver node has exactly one message predecessor.

    [prof] (default: absent — the off-path cost is one [match] per
    dispatched event, zero allocation) arms the {!Obsv.Prof} hot-path
    profiler: every dequeued event is bracketed with host-clock and
    [Gc.minor_words] reads, and the deltas are charged to the
    (payment trace, process label, event kind) dispatch site; the queue
    depth is sampled into [xchain_prof_queue_depth] at each dequeue.

    [monitor] / [sampler] / [recorder] (default: absent — together one
    [option] match per dispatched event, zero allocation) arm runtime
    verification: after every dispatch the engine appends the event to
    the {!Obsv.Recorder} ring, advances the {!Obsv.Sampler} at the
    current sim-time, and evaluates the {!Obsv.Monitor}'s checks. A
    stop-on-violation monitor that trips ends the run with
    {!Violation_stop} at the exact sim-time of first breach; otherwise
    the monitor is finalized at the run's end time so its verdict set
    reflects the final state. *)

val add_process :
  ('msg, 'obs) t ->
  ?clock:Clock.t ->
  ?base:int ->
  ?label:string ->
  ('msg, 'obs) handlers ->
  int
(** Registers a process and returns its pid (consecutive from 0). All
    processes must be added before {!run}.

    [label] (default ["proc"]) names the process's {e role} for the
    profiler — a low-cardinality string like ["alice"] or ["escrow"],
    interned once here ({!Obsv.Prof.intern}), never per event. Ignored
    (and not computed into an id) when the engine has no [prof].

    [base] (default 0) rebases the process's view of the pid space:
    {!send} adds [base] to its destination, {!pid} subtracts it, and a
    delivery's [~src] is reported relative to the {e receiver}'s [base].
    Registering one block of processes per payment at [base = k * stride]
    lets handler code written for a single payment's logical pids 0..m-1
    run unchanged many times within one engine; traces and crash
    scheduling always use engine pids. *)

val process_count : ('msg, 'obs) t -> int

type status =
  | Quiescent  (** no events left — the system reached a fixpoint *)
  | Horizon_reached  (** stopped at the time horizon with events pending *)
  | Event_limit  (** stopped by the event-count safety valve *)
  | Violation_stop
      (** a stop-on-violation monitor tripped: the run ended at the
          sim-time of first safety breach ({!Obsv.Monitor.breach_at}) *)

val run :
  ?horizon:Sim_time.t -> ?max_events:int -> ('msg, 'obs) t -> status
(** Executes [on_start] for every process (in pid order, at time 0), then
    processes events in timestamp order until quiescence, the horizon
    (default {!Sim_time.infinity}), or [max_events] (default 1_000_000). *)

val trace : ('msg, 'obs) t -> ('msg, 'obs) Trace.t
val now : ('msg, 'obs) t -> Sim_time.t

val queue_depth : ('msg, 'obs) t -> int
(** Events currently pending in the queue — the natural first column of a
    {!Obsv.Sampler} probe. *)

val events_processed : ('msg, 'obs) t -> int
(** Events dequeued over this engine's lifetime (across {!run} calls).
    Deterministic for a fixed (seed, configuration) — the per-run basis
    of the engine-events/sec throughput in load and chaos reports. *)

(** {2 Causal tracing} *)

val causal : ('msg, 'obs) t -> Obsv.Causal.t option
(** The recorder passed to {!create}, if any. *)

val prof : ('msg, 'obs) t -> Obsv.Prof.t option
(** The profiler passed to {!create}, if any. *)

val current_node : ('msg, 'obs) t -> int
(** The causal node of the event currently being dispatched (the deliver,
    firing or note that triggered the running handler; sends and timer
    arms made by the handler advance it to themselves). [-1] before the
    first event or when tracing is off. {!Trace.on_record} hooks call this
    to learn which causal node a trace entry belongs to — e.g. the load
    scheduler captures each payment's settlement sink this way. *)

val causal_note :
  ('msg, 'obs) ctx -> ?after:int -> ?trace:int -> label:string -> unit -> int
(** Record an application-level [Note] node on the calling process, chained
    into its program order. [after] (a node id) adds a [Queue]
    happens-after edge — the caller's way of saying "this step waited on
    that one", which {!Obsv.Blame} charges as queueing; [trace] stamps the
    node (and the dispatch context) with a trace id that subsequent sends
    and deliveries inherit. Returns the node id, or [-1] when tracing is
    off. *)

val clock_of : ('msg, 'obs) t -> int -> Clock.t
val is_halted : ('msg, 'obs) t -> int -> bool

val set_clock : ('msg, 'obs) t -> pid:int -> Clock.t -> unit
(** Replace a process's clock. Meant for multiplexers that defer a
    process's start and re-anchor its local time epoch at the actual start
    instant (so absolute local deadlines like the paper's a{_i}/d{_i}
    windows count from the payment's own beginning). Must be called before
    the process arms any timer: already-armed timers keep the global fire
    times computed under the old clock. *)

(** {2 Crash–recovery fault injection}

    A {e down} process is a crashed host: deliveries addressed to it are
    discarded (never replayed), and its armed timers do not fire while it
    is down. If a recovery is scheduled, timer firings swallowed by the
    outage are re-checked at the reboot instant — deadlines live in the
    automaton's persisted store ({!Anta.Store}), so a recovered process
    takes its expired-deadline branches immediately and resumes from the
    exact control state it crashed in (handler closures, including the
    store, survive the outage; only in-flight events are lost). *)

val schedule_crash :
  ('msg, 'obs) t -> pid:int -> at:Sim_time.t -> ?recover_at:Sim_time.t ->
  unit -> unit
(** Schedule [pid] to go down at global time [at] and (optionally) reboot
    at [recover_at]. Must be called before {!run}; [recover_at], when
    given, must be strictly after [at]. *)

val is_down : ('msg, 'obs) t -> int -> bool
