(** Message-delay models and the adversarial scheduler interface.

    The paper's theorems quantify over network behaviours in three classes:

    - {e synchrony}: every message arrives within a known bound δ;
    - {e partial synchrony} (Dwork–Lynch–Stockmeyer): there is an unknown
      Global Stabilisation Time (GST) after which every message — including
      those already in flight — arrives within δ; before GST delays are
      finite but unbounded;
    - {e asynchrony}: delays are finite but unbounded, with no GST.

    A {!t} turns each send into a concrete delay, either by sampling within
    the model's envelope or by delegating to an {e adversary} that may pick
    any delay the model permits. Channels are reliable and FIFO-preserving
    per (src, dst) pair when [fifo] is set. *)

type model =
  | Synchronous of { delta : Sim_time.t }
      (** Delivery within [\[1, delta\]] ticks of the send. *)
  | Partially_synchronous of { gst : Sim_time.t; delta : Sim_time.t }
      (** Delivery by [max (send + delta) (gst + delta)]; after GST the bound
          is δ. The GST is part of the schedule, not known to processes. *)
  | Asynchronous of { mean : Sim_time.t; cap : Sim_time.t }
      (** No bound known to processes; simulated delays are roughly
          exponential with the given mean, hard-capped at [cap] so runs are
          finite. *)

type bounds = { lo : Sim_time.t; hi : Sim_time.t }
(** The envelope within which a delay for a given send must fall. *)

type adversary =
  send_time:Sim_time.t ->
  src:int ->
  dst:int ->
  tag:string ->
  bounds:bounds ->
  Sim_time.t option
(** An adversary inspects a send (identified by its [tag], a protocol-chosen
    message label) and may return a delay. A returned delay is clamped into
    [bounds] — the adversary can never violate the model, only exploit it.
    [None] falls back to random sampling. *)

type copy = Intact | Corrupted
(** One scheduled delivery of a send. [Corrupted] copies reach the engine,
    which damages (or, lacking a mangler, discards) the payload. *)

type tamper =
  send_time:Sim_time.t -> src:int -> dst:int -> tag:string -> copy list
(** A fault injector inspects a send and decides which copies of it the
    network will carry: [[]] drops the message, [[Intact]] is a faithful
    channel, two elements duplicate the send, [Corrupted] elements are
    damaged in flight. Unlike the {!adversary} (which can only stretch
    time within the model), a tamper hook makes channels {e unreliable} —
    it exists for the fault-injection subsystem ({!Faults}) and steps
    outside the paper's reliable-channel assumption by design. *)

type t

val create :
  ?adversary:adversary -> ?tamper:tamper -> ?fifo:bool -> ?link_stats:bool ->
  ?metrics:Obsv.Metrics.t -> model -> Rng.t -> t
(** [fifo] (default [true]) enforces per-channel FIFO by never letting a
    later send on the same (src, dst) pair overtake an earlier one.

    [tamper] (default: none — reliable channels) decides drops, duplicates
    and corruption per send; see {!tamper}.

    [link_stats] (default [true]) records the per-link delay histogram
    below. Load runs multiplexing thousands of payments disable it: one
    histogram child per (src, dst) pair is unbounded label cardinality
    when every payment gets its own pid block.

    [metrics] (default {!Obsv.Metrics.default}) receives a per-link
    [xchain_network_delay] histogram (label [link="src->dst"]) plus the
    [xchain_network_adversary_delays_total],
    [xchain_network_adversary_clamped_total] and
    [xchain_network_fifo_holds_total] counters. *)

val model : t -> model

val bounds_at : model -> send_time:Sim_time.t -> bounds
(** The permitted delay envelope for a message sent at [send_time]. *)

val fate : t -> send_time:Sim_time.t -> src:int -> dst:int -> tag:string ->
  copy list
(** The copies the network will actually carry for this send —
    [[Intact]] unless a [tamper] hook was installed. The engine calls this
    once per send, then {!delivery_time} once per surviving copy. *)

val delivery_time : t -> send_time:Sim_time.t -> src:int -> dst:int ->
  tag:string -> Sim_time.t
(** The absolute global time at which this send will be delivered. *)

val pp_model : Format.formatter -> model -> unit
