type t = { l0 : Sim_time.t; g0 : Sim_time.t; num : int; den : int }

let ppm = 1_000_000

let perfect = { l0 = 0; g0 = 0; num = 1; den = 1 }

let create ?(l0 = Sim_time.zero) ?(g0 = Sim_time.zero) ~num ~den () =
  if num <= 0 || den <= 0 then invalid_arg "Clock.create: rate must be positive";
  { l0; g0; num; den }

let random rng ~drift_ppm =
  if drift_ppm < 0 || drift_ppm >= ppm then
    invalid_arg "Clock.random: drift_ppm out of range";
  let num = Rng.int_in rng ~lo:(ppm - drift_ppm) ~hi:(ppm + drift_ppm) in
  let l0 = Rng.int_in rng ~lo:0 ~hi:1000 in
  { l0; g0 = 0; num; den = ppm }

let rate c = (c.num, c.den)

(* floor ((g - g0) * num / den), overflow-safe via the same hi/lo split as
   Sim_time.scale but flooring instead of ceiling. *)
let floor_scale t ~num ~den =
  if Sim_time.is_infinite t then Sim_time.infinity
  else
    let q = t / den and r = t mod den in
    let mul_sat a b = if a <> 0 && b > max_int / a then max_int else a * b in
    let hi = mul_sat q num in
    let lo = mul_sat r num / den in
    Sim_time.add hi lo

let local_of_global c g =
  let dg = Sim_time.sub g c.g0 in
  Sim_time.add c.l0 (floor_scale dg ~num:c.num ~den:c.den)

let global_of_local c l =
  if Sim_time.is_infinite l then Sim_time.infinity
  else
    let dl = Sim_time.sub l c.l0 in
    if dl = 0 then c.g0
    else Sim_time.add c.g0 (Sim_time.scale dl ~num:c.den ~den:c.num)

let envelope_ok c ~drift_ppm =
  (* num/den within [1 - d/ppm, 1 + d/ppm]  <=>
     num*ppm within [den*(ppm-d), den*(ppm+d)] *)
  let lo = c.den * (ppm - drift_ppm) and hi = c.den * (ppm + drift_ppm) in
  let v = c.num * ppm in
  v >= lo && v <= hi

let pp ppf c =
  Fmt.pf ppf "clock(rate=%d/%d, l0=%a, g0=%a)" c.num c.den Sim_time.pp c.l0
    Sim_time.pp c.g0
