type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let mean xs =
  match xs with
  | [] -> 0.0
  | _ ->
      let n = List.length xs in
      List.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = List.length xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. float_of_int (n - 1))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p <= 0.0 then sorted.(0)
  else if p >= 100.0 then sorted.(n - 1)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let w = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
      if List.exists Float.is_nan xs then
        invalid_arg "Stats.summarize: NaN in sample";
      let a = Array.of_list xs in
      (* Float.compare, not polymorphic compare: the latter treats every
         NaN comparison as an unordered lie and can leave the array
         mis-sorted; with NaN rejected above the two agree, but keep the
         sort total on principle. *)
      Array.sort Float.compare a;
      let n = Array.length a in
      {
        n;
        mean = mean xs;
        stddev = stddev xs;
        min = a.(0);
        p50 = percentile a 50.0;
        p90 = percentile a 90.0;
        p99 = percentile a 99.0;
        max = a.(n - 1);
      }

let summarize_int xs = summarize (List.map float_of_int xs)

let rate ~hits ~total =
  if total = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int total

let wilson ~hits ~total =
  if total = 0 then (0.0, 100.0)
  else begin
    let z = 1.959964 (* 97.5th percentile of the standard normal *) in
    let n = float_of_int total in
    let p = float_of_int hits /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = p +. (z2 /. (2.0 *. n)) in
    let half = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
    (100.0 *. (centre -. half) /. denom, 100.0 *. (centre +. half) /. denom)
  end

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.1f sd=%.1f min=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f"
    s.n s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
