type model =
  | Synchronous of { delta : Sim_time.t }
  | Partially_synchronous of { gst : Sim_time.t; delta : Sim_time.t }
  | Asynchronous of { mean : Sim_time.t; cap : Sim_time.t }

type bounds = { lo : Sim_time.t; hi : Sim_time.t }

type adversary =
  send_time:Sim_time.t ->
  src:int ->
  dst:int ->
  tag:string ->
  bounds:bounds ->
  Sim_time.t option

type copy = Intact | Corrupted

type tamper =
  send_time:Sim_time.t -> src:int -> dst:int -> tag:string -> copy list

type t = {
  model : model;
  adversary : adversary option;
  tamper : tamper option;
  fifo : bool;
  link_stats : bool;
  rng : Rng.t;
  last_delivery : (int * int, Sim_time.t) Hashtbl.t;
  reg : Obsv.Metrics.t;
  link_delay : (int * int, Obsv.Metrics.histogram) Hashtbl.t;
  m_adversary : Obsv.Metrics.counter;
  m_adversary_clamped : Obsv.Metrics.counter;
  m_fifo_holds : Obsv.Metrics.counter;
}

let create ?adversary ?tamper ?(fifo = true) ?(link_stats = true)
    ?(metrics = Obsv.Metrics.default) model rng =
  (match model with
  | Synchronous { delta } ->
      if delta < 1 then invalid_arg "Network: delta must be >= 1"
  | Partially_synchronous { delta; _ } ->
      if delta < 1 then invalid_arg "Network: delta must be >= 1"
  | Asynchronous { mean; cap } ->
      if mean < 1 || cap < mean then invalid_arg "Network: bad async params");
  {
    model;
    adversary;
    tamper;
    fifo;
    link_stats;
    rng;
    last_delivery = Hashtbl.create 64;
    reg = metrics;
    link_delay = Hashtbl.create 64;
    m_adversary =
      Obsv.Metrics.counter metrics
        ~help:"Message delays chosen by the adversary and honored as picked"
        "xchain_network_adversary_delays_total";
    m_adversary_clamped =
      Obsv.Metrics.counter metrics
        ~help:"Adversary delay picks overridden by clamping into the model"
        "xchain_network_adversary_clamped_total";
    m_fifo_holds =
      Obsv.Metrics.counter metrics
        ~help:"Deliveries pushed later to preserve per-link FIFO order"
        "xchain_network_fifo_holds_total";
  }

let model t = t.model

let bounds_at model ~send_time =
  match model with
  | Synchronous { delta } -> { lo = 1; hi = delta }
  | Partially_synchronous { gst; delta } ->
      if Sim_time.(send_time >= gst) then { lo = 1; hi = delta }
      else
        (* delivered by gst + delta at the latest, but may also arrive
           earlier — partial synchrony places no lower bound before GST. *)
        { lo = 1; hi = Sim_time.add (Sim_time.sub gst send_time) delta }
  | Asynchronous { cap; _ } -> { lo = 1; hi = cap }

let sample t ~send_time:_ bounds =
  match t.model with
  | Synchronous _ | Partially_synchronous _ ->
      Rng.int_in t.rng ~lo:bounds.lo ~hi:bounds.hi
  | Asynchronous { mean; _ } ->
      let d = Rng.exponential_ticks t.rng ~mean in
      Stdlib.min (Stdlib.max d bounds.lo) bounds.hi

let clamp bounds d = Stdlib.min (Stdlib.max d bounds.lo) bounds.hi

(* The per-link histogram child is created on the link's first message and
   cached; steady-state cost is one hashtable probe plus the histogram
   store. Label cardinality is links × 1, capped by the registry. *)
let link_histogram t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.link_delay key with
  | Some h -> h
  | None ->
      let h =
        Obsv.Metrics.histogram t.reg
          ~help:"Per-link message delay, in ticks"
          ~labels:[ ("link", Printf.sprintf "%d->%d" src dst) ]
          "xchain_network_delay"
      in
      Hashtbl.add t.link_delay key h;
      h

let fate t ~send_time ~src ~dst ~tag =
  match t.tamper with
  | None -> [ Intact ]
  | Some f -> f ~send_time ~src ~dst ~tag

let delivery_time t ~send_time ~src ~dst ~tag =
  let bounds = bounds_at t.model ~send_time in
  let delay =
    match t.adversary with
    | Some adv -> (
        match adv ~send_time ~src ~dst ~tag ~bounds with
        | Some d ->
            let d' = clamp bounds d in
            (* an out-of-bounds pick was overridden, not honored — count it
               separately so metrics distinguish the two *)
            Obsv.Metrics.inc
              (if d' = d then t.m_adversary else t.m_adversary_clamped);
            d'
        | None -> sample t ~send_time bounds)
    | None -> sample t ~send_time bounds
  in
  let at = Sim_time.add send_time delay in
  let at =
    if not t.fifo then at
    else begin
      let key = (src, dst) in
      let at' =
        match Hashtbl.find_opt t.last_delivery key with
        | Some prev when Sim_time.(prev > at) ->
            Obsv.Metrics.inc t.m_fifo_holds;
            prev
        | _ -> at
      in
      Hashtbl.replace t.last_delivery key at';
      at'
    end
  in
  if t.link_stats then
    Obsv.Metrics.observe (link_histogram t ~src ~dst)
      (Sim_time.sub at send_time);
  at

let pp_model ppf = function
  | Synchronous { delta } -> Fmt.pf ppf "sync(δ=%a)" Sim_time.pp delta
  | Partially_synchronous { gst; delta } ->
      Fmt.pf ppf "psync(GST=%a, δ=%a)" Sim_time.pp gst Sim_time.pp delta
  | Asynchronous { mean; cap } ->
      Fmt.pf ppf "async(mean=%a, cap=%a)" Sim_time.pp mean Sim_time.pp cap
