type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = next_int64 g in
  { state = mix64 s }

let copy g = { state = g.state }

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the low 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec go () =
    let r = Int64.to_int (Int64.logand (next_int64 g) mask) in
    let v = r mod bound in
    if r - v > (1 lsl 62) - bound then go () else v
  in
  go ()

let int_in g ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  x *. (r /. 9007199254740992.0)

let choose g a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential_ticks g ~mean =
  if mean <= 0 then 1
  else begin
    (* Geometric with success probability 1/mean, via inversion on a uniform
       float; clamped to [1, 50*mean] to keep schedules finite. *)
    let u = float g 1.0 in
    let u = if u <= 0.0 then 1e-12 else u in
    let v = int_of_float (ceil (-.float_of_int mean *. log u)) in
    let v = if v < 1 then 1 else v in
    Stdlib.min v (50 * mean)
  end
