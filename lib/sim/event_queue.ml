type 'a cell = { time : Sim_time.t; seq : int; token : int; payload : 'a }

type 'a t = {
  mutable heap : 'a cell array; (* heap.(0) unused when empty *)
  mutable size : int;
  mutable next_seq : int;
  mutable next_token : int;
  dead : (int, unit) Hashtbl.t;
  live : (int, unit) Hashtbl.t;
      (* tokens physically present in [heap]: makes [cancel] O(1) instead of
         a full heap scan, which dominated at load-scale occupancy *)
}

let create () =
  {
    heap = [||];
    size = 0;
    next_seq = 0;
    next_token = 0;
    dead = Hashtbl.create 16;
    live = Hashtbl.create 16;
  }

let length q = q.size - Hashtbl.length q.dead
let is_empty q = length q = 0

let before a b =
  let c = Sim_time.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nh = Array.make ncap q.heap.(0) in
    Array.blit q.heap 0 nh 0 q.size;
    q.heap <- nh
  end

let push q ~time payload =
  let token = q.next_token in
  q.next_token <- token + 1;
  let cell = { time; seq = q.next_seq; token; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 cell
  else grow q;
  q.heap.(q.size) <- cell;
  q.size <- q.size + 1;
  sift_up q (q.size - 1);
  Hashtbl.replace q.live token ();
  token

let pop_cell q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Hashtbl.remove q.live top.token;
    Some top
  end

let rec pop q =
  match pop_cell q with
  | None -> None
  | Some cell ->
      if Hashtbl.mem q.dead cell.token then begin
        Hashtbl.remove q.dead cell.token;
        pop q
      end
      else Some (cell.time, cell.payload)

let rec peek_time q =
  if q.size = 0 then None
  else
    let top = q.heap.(0) in
    if Hashtbl.mem q.dead top.token then begin
      Hashtbl.remove q.dead top.token;
      ignore (pop_cell q);
      peek_time q
    end
    else Some top.time

let cancel q token =
  if token < 0 || token >= q.next_token || Hashtbl.mem q.dead token then false
  else if Hashtbl.mem q.live token then begin
    (* Only mark tokens that are still in the heap. *)
    Hashtbl.add q.dead token ();
    true
  end
  else false

let clear q =
  q.size <- 0;
  Hashtbl.reset q.dead;
  Hashtbl.reset q.live

let drain q =
  let rec go acc =
    match pop q with None -> List.rev acc | Some te -> go (te :: acc)
  in
  go []
