(** Structured execution traces.

    Every engine run produces a trace: the totally ordered list of events
    that occurred, with global timestamps. Property monitors (library
    [props]) are pure functions over traces, so correctness checking is
    decoupled from execution.

    ['msg] is the protocol's wire-message type; ['obs] is the protocol's
    observation type — domain events such as "value moved" or "certificate
    issued" that processes emit explicitly via their context. *)

type ('msg, 'obs) entry =
  | Sent of { t : Sim_time.t; src : int; dst : int; tag : string; msg : 'msg }
  | Delivered of {
      t : Sim_time.t;
      sent_at : Sim_time.t;
      src : int;
      dst : int;
      tag : string;
      msg : 'msg;
    }
  | Timer_set of {
      t : Sim_time.t;
      owner : int;
      label : string;
      local_deadline : Sim_time.t;
      global_fire : Sim_time.t;
    }
  | Timer_fired of { t : Sim_time.t; owner : int; label : string }
  | Observed of { t : Sim_time.t; pid : int; obs : 'obs }
  | Halted of { t : Sim_time.t; pid : int }
  | Crashed of { t : Sim_time.t; pid : int; recover_at : Sim_time.t option }
      (** Fault injection took the process down; [recover_at] is the
          scheduled reboot time, if any. *)
  | Recovered of { t : Sim_time.t; pid : int }

type ('msg, 'obs) t

val create : unit -> ('msg, 'obs) t
val record : ('msg, 'obs) t -> ('msg, 'obs) entry -> unit
val to_list : ('msg, 'obs) t -> ('msg, 'obs) entry list
(** Entries in chronological order. *)

val length : ('msg, 'obs) t -> int

val time_of : ('msg, 'obs) entry -> Sim_time.t

val observations : ('msg, 'obs) t -> (Sim_time.t * int * 'obs) list
(** Just the [Observed] entries, in order, as [(time, pid, obs)]. *)

val message_count : ('msg, 'obs) t -> int
(** Number of [Sent] entries. *)

val last_time : ('msg, 'obs) t -> Sim_time.t
(** Timestamp of the final entry, or {!Sim_time.zero} for an empty trace. *)

val find_observation :
  ('msg, 'obs) t -> f:(int -> 'obs -> bool) -> (Sim_time.t * int * 'obs) option
(** First observation satisfying [f pid obs]. *)

val pp :
  msg:(Format.formatter -> 'msg -> unit) ->
  obs:(Format.formatter -> 'obs -> unit) ->
  Format.formatter ->
  ('msg, 'obs) t ->
  unit

val to_jsonl :
  msg:('msg -> string) ->
  obs:('obs -> string) ->
  ('msg, 'obs) t ->
  string
(** One JSON object per line, chronological: machine-readable export for
    external analysis. The [msg]/[obs] serializers render payloads as
    plain strings (escaped into the JSON); structural fields (kind, time,
    endpoints, tags, labels) are first-class JSON fields. Every line
    carries a ["seq"] field — the entry's 0-based position in the trace —
    so consumers can re-establish total order after filtering or merging
    (timestamps alone tie on same-tick events). *)
