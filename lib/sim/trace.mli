(** Structured execution traces.

    Every engine run produces a trace: the totally ordered list of events
    that occurred, with global timestamps. Property monitors (library
    [props]) are pure functions over traces, so correctness checking is
    decoupled from execution.

    ['msg] is the protocol's wire-message type; ['obs] is the protocol's
    observation type — domain events such as "value moved" or "certificate
    issued" that processes emit explicitly via their context. *)

type ('msg, 'obs) entry =
  | Sent of { t : Sim_time.t; src : int; dst : int; tag : string; msg : 'msg }
  | Delivered of {
      t : Sim_time.t;
      sent_at : Sim_time.t;
      src : int;
      dst : int;
      tag : string;
      msg : 'msg;
    }
  | Timer_set of {
      t : Sim_time.t;
      owner : int;
      label : string;
      local_deadline : Sim_time.t;
      global_fire : Sim_time.t;
    }
  | Timer_fired of { t : Sim_time.t; owner : int; label : string }
  | Observed of { t : Sim_time.t; pid : int; obs : 'obs }
  | Halted of { t : Sim_time.t; pid : int }
  | Crashed of { t : Sim_time.t; pid : int; recover_at : Sim_time.t option }
      (** Fault injection took the process down; [recover_at] is the
          scheduled reboot time, if any. *)
  | Recovered of { t : Sim_time.t; pid : int }

type ('msg, 'obs) t

val create : ?capacity:int -> unit -> ('msg, 'obs) t
(** Without [capacity] (the default) the trace keeps every entry, as it
    always has. With [capacity] it becomes a ring buffer holding the most
    recent [capacity] entries: recording past the cap silently evicts the
    oldest entry and bumps {!dropped_count}. Bounded traces keep memory
    flat on multi-thousand-payment load runs; combine with {!on_record}
    when an analysis must see every entry as it happens. Raises
    [Invalid_argument] if [capacity <= 0]. *)

val record : ('msg, 'obs) t -> ('msg, 'obs) entry -> unit

val on_record : ('msg, 'obs) t -> (('msg, 'obs) entry -> unit) -> unit
(** Register a hook called synchronously on every {!record}, before the
    entry is stored (and regardless of whether the ring later evicts it).
    Hooks run in registration order; they must not record into the same
    trace. This is how load accounting observes a run incrementally
    without requiring an unbounded trace. *)

val to_list : ('msg, 'obs) t -> ('msg, 'obs) entry list
(** Entries in chronological order. For a bounded trace, only the kept
    window (the most recent [capacity] entries). *)

val length : ('msg, 'obs) t -> int
(** Total entries recorded, including any evicted from a bounded trace. *)

val dropped_count : ('msg, 'obs) t -> int
(** Entries evicted by a bounded trace; 0 for the default unbounded mode. *)

val time_of : ('msg, 'obs) entry -> Sim_time.t

val observations : ('msg, 'obs) t -> (Sim_time.t * int * 'obs) list
(** Just the [Observed] entries, in order, as [(time, pid, obs)]. *)

val message_count : ('msg, 'obs) t -> int
(** Number of [Sent] entries. *)

val last_time : ('msg, 'obs) t -> Sim_time.t
(** Timestamp of the final entry, or {!Sim_time.zero} for an empty trace. *)

val find_observation :
  ('msg, 'obs) t -> f:(int -> 'obs -> bool) -> (Sim_time.t * int * 'obs) option
(** First observation satisfying [f pid obs]. *)

val pp :
  msg:(Format.formatter -> 'msg -> unit) ->
  obs:(Format.formatter -> 'obs -> unit) ->
  Format.formatter ->
  ('msg, 'obs) t ->
  unit

val to_jsonl :
  msg:('msg -> string) ->
  obs:('obs -> string) ->
  ('msg, 'obs) t ->
  string
(** One JSON object per line, chronological: machine-readable export for
    external analysis. The [msg]/[obs] serializers render payloads as
    plain strings (escaped into the JSON); structural fields (kind, time,
    endpoints, tags, labels) are first-class JSON fields. Every line
    carries a ["seq"] field — the entry's 0-based position in the trace —
    so consumers can re-establish total order after filtering or merging
    (timestamps alone tie on same-tick events). *)
