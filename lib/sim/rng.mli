(** Deterministic, splittable pseudo-random number generator.

    A SplitMix64 generator: fast, high-quality for simulation purposes, and —
    crucially for reproducible experiments — {e splittable}: {!split} derives
    an independent child stream, so every process / run / experiment arm can
    own its own generator while the whole fleet is a pure function of one
    root seed. *)

type t
(** A mutable generator. *)

val create : seed:int -> t

val split : t -> t
(** [split g] advances [g] and returns a fresh generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val copy : t -> t
(** [copy g] duplicates the current state; both copies then produce the same
    stream. Used to replay a schedule. *)

val next_int64 : t -> int64
(** Uniform over all 2{^64} values. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. Requires [lo <= hi]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. Only used for reporting jitter, never
    for scheduling decisions. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential_ticks : t -> mean:int -> int
(** A geometric approximation of an exponential delay with the given mean, in
    integer ticks, always at least 1. Used for randomized network latency. *)
