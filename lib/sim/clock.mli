(** Drifting local clocks.

    The paper's synchrony assumption bounds clock {e drift}: each
    participant's hardware clock advances at a rate within a known envelope
    of real time. We model a clock as an affine map from global (real,
    simulator) time to local time with an exact rational rate:

    [local(g) = l0 + floor ((g - g0) * num / den)]

    Rates are rationals so that round-tripping between local deadlines and
    global wake-up times is exact — no float drift on top of modelled
    drift. A drift bound ρ (in parts-per-million of rate deviation)
    constrains [num/den ∈ [den-ρppm, den+ρppm]/den]. *)

type t

val perfect : t
(** Rate exactly 1, offset 0: local time equals global time. *)

val create : ?l0:Sim_time.t -> ?g0:Sim_time.t -> num:int -> den:int -> unit -> t
(** A clock with rational rate [num/den] (both positive), reading [l0] at
    global time [g0]. *)

val random : Rng.t -> drift_ppm:int -> t
(** A clock whose rate is uniform in [1 ± drift_ppm·10⁻⁶] with a random
    initial offset in [\[0, 1000\]] ticks. [drift_ppm] may be 0. *)

val rate : t -> int * int
(** The [(num, den)] rate pair, in lowest terms as given. *)

val local_of_global : t -> Sim_time.t -> Sim_time.t
(** Read the clock at a global instant. Monotone and total. *)

val global_of_local : t -> Sim_time.t -> Sim_time.t
(** [global_of_local c l] is the earliest global time [g] with
    [local_of_global c g >= l] — the correct wake-up instant for a local
    deadline [l]. Returns {!Sim_time.infinity} if the deadline was set to
    infinity. *)

val envelope_ok : t -> drift_ppm:int -> bool
(** Whether the clock's rate lies within the [1 ± drift_ppm·10⁻⁶]
    envelope. *)

val pp : Format.formatter -> t -> unit
