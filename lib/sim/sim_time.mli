(** Simulated time.

    All simulation time is kept in integer {e ticks} so that executions are
    exactly reproducible: there is no floating-point rounding anywhere in the
    engine. One tick has no fixed physical meaning; experiments conventionally
    treat one tick as a millisecond. Local (per-process) clock values use the
    same representation but live on a different axis (see {!Clock}). *)

type t = int
(** A point in time, in ticks. Always non-negative in engine-produced
    events. *)

val zero : t

val infinity : t
(** A time later than any reachable simulation time ([max_int]). Used as the
    horizon for "never". *)

val is_infinite : t -> bool

val add : t -> t -> t
(** Saturating addition: [add t d] never overflows past {!infinity}. *)

val sub : t -> t -> t
(** [sub t d] clamps at {!zero}. *)

val scale : t -> num:int -> den:int -> t
(** [scale t ~num ~den] is [ceil (t * num / den)] computed without overflow
    for all simulation-scale values. [den] must be positive. Saturates at
    {!infinity}. *)

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val of_int : int -> t
(** [of_int n] checks [n >= 0] and returns it as a time. *)

val to_int : t -> int

val pp : Format.formatter -> t -> unit
(** Prints ticks as an integer, or ["inf"] for {!infinity}. *)

val to_string : t -> string
