type 'msg event =
  | Deliver of {
      src : int;
      dst : int;
      msg : 'msg;
      sent_at : Sim_time.t;
      cause : int; (* causal node id of the send, -1 when tracing is off *)
    }
  | Fire of {
      owner : int;
      label : string;
      epoch : int;
      cause : int; (* causal node id of the arming timer_set *)
      deferred : bool; (* re-pushed to the owner's recovery by an outage *)
    }
  | Crash of { pid : int; recover_at : Sim_time.t option }
  | Recover of { pid : int }

type ('msg, 'obs) handlers = {
  on_start : ('msg, 'obs) ctx -> unit;
  on_receive : ('msg, 'obs) ctx -> src:int -> 'msg -> unit;
  on_timer : ('msg, 'obs) ctx -> label:string -> unit;
}

and ('msg, 'obs) proc = {
  handlers : ('msg, 'obs) handlers;
  mutable clock : Clock.t;
  base : int;
      (* pid-translation offset: [send ~dst] resolves to [base + dst] and
         delivered [~src] is rebased the same way, so handlers written
         against a logical pid layout (e.g. one payment's Topology) can be
         instantiated many times in one engine at different offsets *)
  proc_rng : Rng.t;
  timer_epochs : (string, int) Hashtbl.t;
      (* current epoch per label: stale Fire events are dropped *)
  mutable halted : bool;
  mutable down : bool; (* crashed by fault injection, may recover *)
  mutable up_at : Sim_time.t option; (* scheduled reboot while down *)
  mutable last_node : int; (* this pid's latest causal node (program order) *)
  mutable crash_node : int;
  mutable recover_node : int; (* outage edges: crash → recover → deferred *)
  prof_label : int; (* interned Prof label id, -1 when profiling is off *)
}

(* Handles resolved once at [create]: the per-event updates below are plain
   integer stores (see lib/obsv), cheap enough to stay on at any scale. *)
and telemetry = {
  m_events : Obsv.Metrics.counter;
  m_sent : Obsv.Metrics.counter;
  m_delivered : Obsv.Metrics.counter;
  m_timers_set : Obsv.Metrics.counter;
  m_timers_fired : Obsv.Metrics.counter;
  m_timers_stale : Obsv.Metrics.counter;
  m_queue_depth : Obsv.Metrics.gauge;
  m_crashes : Obsv.Metrics.counter;
  m_recoveries : Obsv.Metrics.counter;
  m_procs_down : Obsv.Metrics.gauge;
  m_down_drops : Obsv.Metrics.counter;
  m_timers_deferred : Obsv.Metrics.counter;
  m_corrupt_drops : Obsv.Metrics.counter;
}

(* Runtime-verification hooks, bundled so the dispatch loop pays exactly
   one [option] match per event when none of the three is armed. *)
and watch = {
  mon : Obsv.Monitor.t option;
  samp : Obsv.Sampler.t option;
  recd : Obsv.Recorder.t option;
}

and ('msg, 'obs) t = {
  tag_of : 'msg -> string;
  mangle : ('msg -> Rng.t -> 'msg option) option;
  network : Network.t;
  sigma : Sim_time.t;
  root_rng : Rng.t;
  queue : 'msg event Event_queue.t;
  mutable procs : ('msg, 'obs) proc array;
  mutable nprocs : int;
  tr : ('msg, 'obs) Trace.t;
  mutable clock_now : Sim_time.t;
  mutable started : bool;
  tm : telemetry;
  causal : Obsv.Causal.t option;
  prof : Obsv.Prof.t option;
  watch : watch option;
  (* context of the event being dispatched; [Trace.on_record] hooks read
     [cur_node] to learn which causal node an observation belongs to *)
  mutable cur_node : int;
  mutable cur_trace : int;
  mutable events : int; (* events dequeued over this engine's lifetime *)
}

and ('msg, 'obs) ctx = { engine : ('msg, 'obs) t; self : int }

let silent =
  {
    on_start = (fun _ -> ());
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let telemetry_handles reg =
  let counter = Obsv.Metrics.counter reg in
  {
    m_events = counter ~help:"Events dequeued by the engine" "xchain_events_total";
    m_sent = counter ~help:"Messages sent" "xchain_messages_sent_total";
    m_delivered =
      counter ~help:"Messages delivered" "xchain_messages_delivered_total";
    m_timers_set = counter ~help:"Timers armed" "xchain_timers_set_total";
    m_timers_fired = counter ~help:"Timers fired live" "xchain_timers_fired_total";
    m_timers_stale =
      counter ~help:"Stale timer firings dropped (re-armed or cancelled)"
        "xchain_timers_stale_total";
    m_queue_depth =
      Obsv.Metrics.gauge reg ~help:"Pending events in the engine queue"
        "xchain_event_queue_depth";
    m_crashes =
      counter ~help:"Processes taken down by fault injection"
        "xchain_crashes_total";
    m_recoveries =
      counter ~help:"Crashed processes that rebooted" "xchain_recoveries_total";
    m_procs_down =
      Obsv.Metrics.gauge reg ~help:"Processes currently down (crashed)"
        "xchain_procs_down";
    m_down_drops =
      counter ~help:"Deliveries discarded because the destination was down"
        "xchain_deliveries_dropped_down_total";
    m_timers_deferred =
      counter
        ~help:"Timer firings deferred to the owner's scheduled recovery"
        "xchain_timers_deferred_total";
    m_corrupt_drops =
      counter
        ~help:"Corrupted copies discarded for want of a message mangler"
        "xchain_corrupt_copies_dropped_total";
  }

let create ~tag_of ?mangle ~network ?(sigma = Sim_time.zero)
    ?(metrics = Obsv.Metrics.default) ?trace_capacity ?causal ?prof ?monitor
    ?sampler ?recorder ~seed () =
  let watch =
    match (monitor, sampler, recorder) with
    | None, None, None -> None
    | mon, samp, recd -> Some { mon; samp; recd }
  in
  {
    tag_of;
    mangle;
    network;
    sigma;
    root_rng = Rng.create ~seed;
    queue = Event_queue.create ();
    procs = [||];
    nprocs = 0;
    tr = Trace.create ?capacity:trace_capacity ();
    clock_now = Sim_time.zero;
    started = false;
    tm = telemetry_handles metrics;
    causal;
    prof;
    watch;
    cur_node = -1;
    cur_trace = -1;
    events = 0;
  }

let add_process t ?(clock = Clock.perfect) ?(base = 0) ?label handlers =
  if t.started then invalid_arg "Engine.add_process: engine already running";
  if base < 0 then invalid_arg "Engine.add_process: negative base";
  let prof_label =
    match t.prof with
    | None -> -1
    | Some p ->
        Obsv.Prof.intern p (match label with Some l -> l | None -> "proc")
  in
  let proc =
    {
      handlers;
      clock;
      base;
      proc_rng = Rng.split t.root_rng;
      timer_epochs = Hashtbl.create 8;
      halted = false;
      down = false;
      up_at = None;
      last_node = -1;
      crash_node = -1;
      recover_node = -1;
      prof_label;
    }
  in
  let pid = t.nprocs in
  let cap = Array.length t.procs in
  if t.nprocs >= cap then begin
    let np = Array.make (Stdlib.max 8 (2 * cap)) proc in
    Array.blit t.procs 0 np 0 t.nprocs;
    t.procs <- np
  end;
  t.procs.(pid) <- proc;
  t.nprocs <- pid + 1;
  pid

let process_count t = t.nprocs
let proc t pid = t.procs.(pid)
let trace t = t.tr
let now t = t.clock_now
let clock_of t pid = (proc t pid).clock
let is_halted t pid = (proc t pid).halted
let is_down t pid = (proc t pid).down

let set_clock t ~pid clock = (proc t pid).clock <- clock

(* --- causal recording (every call is a no-op when [causal] is absent) --- *)

let causal t = t.causal
let prof t = t.prof
let current_node t = t.cur_node

(* Append a node for [pid] and chain it into the pid's program order. All
   other edges are the caller's business. *)
let causal_record t ~kind ~pid ~trace ~label =
  match t.causal with
  | None -> -1
  | Some c ->
      let p = proc t pid in
      let node =
        Obsv.Causal.record c ~kind ~pid ~at:t.clock_now ~trace ~label ()
      in
      if p.last_node >= 0 then
        Obsv.Causal.add_edge c ~kind:Obsv.Causal.Program ~src:p.last_node
          ~dst:node;
      p.last_node <- node;
      node

let schedule_crash t ~pid ~at ?recover_at () =
  if t.started then
    invalid_arg "Engine.schedule_crash: engine already running";
  if pid < 0 || pid >= t.nprocs then
    invalid_arg "Engine.schedule_crash: bad pid";
  (match recover_at with
  | Some r when Sim_time.(r <= at) ->
      invalid_arg "Engine.schedule_crash: recovery must follow the crash"
  | _ -> ());
  ignore (Event_queue.push t.queue ~time:at (Crash { pid; recover_at }));
  match recover_at with
  | Some r when not (Sim_time.is_infinite r) ->
      ignore (Event_queue.push t.queue ~time:r (Recover { pid }))
  | _ -> ()

(* --- ctx operations --- *)

let pid ctx = ctx.self - (proc ctx.engine ctx.self).base
let rng ctx = (proc ctx.engine ctx.self).proc_rng

let local_now ctx =
  Clock.local_of_global (proc ctx.engine ctx.self).clock ctx.engine.clock_now

let send_resolved ctx ~dst msg =
  let t = ctx.engine in
  if dst < 0 || dst >= t.nprocs then invalid_arg "Engine.send: bad destination";
  let tag = t.tag_of msg in
  let p = proc t ctx.self in
  let compute =
    if Sim_time.equal t.sigma Sim_time.zero then Sim_time.zero
    else Rng.int_in p.proc_rng ~lo:0 ~hi:t.sigma
  in
  let depart = Sim_time.add t.clock_now compute in
  let cause =
    causal_record t ~kind:Obsv.Causal.Send ~pid:ctx.self ~trace:t.cur_trace
      ~label:tag
  in
  if cause >= 0 then t.cur_node <- cause;
  Trace.record t.tr (Sent { t = t.clock_now; src = ctx.self; dst; tag; msg });
  Obsv.Metrics.inc t.tm.m_sent;
  let deliver msg =
    let arrive =
      Network.delivery_time t.network ~send_time:depart ~src:ctx.self ~dst ~tag
    in
    ignore
      (Event_queue.push t.queue ~time:arrive
         (Deliver { src = ctx.self; dst; msg; sent_at = t.clock_now; cause }))
  in
  (* the fault injector decides how many copies the channel carries (none =
     dropped); each surviving copy draws its own delay, so duplicates still
     obey the per-link FIFO clamp *)
  List.iter
    (fun copy ->
      match (copy : Network.copy) with
      | Network.Intact -> deliver msg
      | Network.Corrupted -> (
          match t.mangle with
          | Some f -> (
              match f msg p.proc_rng with
              | Some damaged -> deliver damaged
              | None -> Obsv.Metrics.inc t.tm.m_corrupt_drops)
          | None ->
              (* authenticated channels: an undetectably-corrupted payload
                 cannot be fabricated, so the receiver discards it — model
                 that as a drop at the network *)
              Obsv.Metrics.inc t.tm.m_corrupt_drops))
    (Network.fate t.network ~send_time:depart ~src:ctx.self ~dst ~tag);
  Obsv.Metrics.set t.tm.m_queue_depth (Event_queue.length t.queue)

let send ctx ~dst msg =
  send_resolved ctx ~dst:((proc ctx.engine ctx.self).base + dst) msg

let send_absolute ctx ~dst msg = send_resolved ctx ~dst msg

let set_timer ctx ~deadline ~label =
  let t = ctx.engine in
  let p = proc t ctx.self in
  let epoch =
    match Hashtbl.find_opt p.timer_epochs label with
    | Some e -> e + 1
    | None -> 0
  in
  Hashtbl.replace p.timer_epochs label epoch;
  let global_fire = Clock.global_of_local p.clock deadline in
  (* never fire in the past: a deadline already reached fires "now" *)
  let global_fire = Sim_time.max global_fire t.clock_now in
  let cause =
    causal_record t ~kind:Obsv.Causal.Timer_set ~pid:ctx.self
      ~trace:t.cur_trace ~label
  in
  if cause >= 0 then t.cur_node <- cause;
  Trace.record t.tr
    (Timer_set
       {
         t = t.clock_now;
         owner = ctx.self;
         label;
         local_deadline = deadline;
         global_fire;
       });
  Obsv.Metrics.inc t.tm.m_timers_set;
  if not (Sim_time.is_infinite global_fire) then begin
    ignore
      (Event_queue.push t.queue ~time:global_fire
         (Fire { owner = ctx.self; label; epoch; cause; deferred = false }));
    Obsv.Metrics.set t.tm.m_queue_depth (Event_queue.length t.queue)
  end

let set_timer_after ctx ~after ~label =
  set_timer ctx ~deadline:(Sim_time.add (local_now ctx) after) ~label

let cancel_timer ctx ~label =
  let p = proc ctx.engine ctx.self in
  match Hashtbl.find_opt p.timer_epochs label with
  | None -> ()
  | Some e -> Hashtbl.replace p.timer_epochs label (e + 1)

let causal_note ctx ?(after = -1) ?trace ~label () =
  let t = ctx.engine in
  match t.causal with
  | None -> -1
  | Some c ->
      let tr = match trace with Some v -> v | None -> t.cur_trace in
      let node =
        causal_record t ~kind:Obsv.Causal.Note ~pid:ctx.self ~trace:tr ~label
      in
      if after >= 0 then
        Obsv.Causal.add_edge c ~kind:Obsv.Causal.Queue ~src:after ~dst:node;
      t.cur_node <- node;
      t.cur_trace <- tr;
      node

let observe ctx obs =
  let t = ctx.engine in
  Trace.record t.tr (Observed { t = t.clock_now; pid = ctx.self; obs })

let halt ctx =
  let t = ctx.engine in
  let p = proc t ctx.self in
  if not p.halted then begin
    p.halted <- true;
    Trace.record t.tr (Halted { t = t.clock_now; pid = ctx.self })
  end

(* --- main loop --- *)

type status = Quiescent | Horizon_reached | Event_limit | Violation_stop

let dispatch t ev =
  match ev with
  | Deliver { src; dst; msg; sent_at; cause } ->
      let p = proc t dst in
      if p.down then
        (* a crashed host receives nothing: the message is gone, like a
           network drop — recovery does not replay it. No causal node: a
           dropped copy is not an event anyone can depend on. *)
        Obsv.Metrics.inc t.tm.m_down_drops
      else begin
        let tag = t.tag_of msg in
        (match t.causal with
        | Some c when cause >= 0 ->
            let trace = Obsv.Causal.trace_of c cause in
            t.cur_trace <- trace;
            let node =
              causal_record t ~kind:Obsv.Causal.Deliver ~pid:dst ~trace
                ~label:tag
            in
            Obsv.Causal.add_edge c ~kind:Obsv.Causal.Message ~src:cause
              ~dst:node;
            t.cur_node <- node
        | _ -> ());
        Trace.record t.tr
          (Delivered { t = t.clock_now; sent_at; src; dst; tag; msg });
        Obsv.Metrics.inc t.tm.m_delivered;
        if not p.halted then
          p.handlers.on_receive { engine = t; self = dst } ~src:(src - p.base)
            msg
      end
  | Fire { owner; label; epoch; cause; deferred } ->
      let p = proc t owner in
      let live =
        match Hashtbl.find_opt p.timer_epochs label with
        | Some e -> e = epoch
        | None -> false
      in
      if live && p.down then begin
        match p.up_at with
        | Some r when Sim_time.(r > t.clock_now) ->
            (* deadlines persist across a reboot (they live in the automaton
               store): re-check them the moment the process comes back *)
            Obsv.Metrics.inc t.tm.m_timers_deferred;
            ignore
              (Event_queue.push t.queue ~time:r
                 (Fire { owner; label; epoch; cause; deferred = true }))
        | _ -> Obsv.Metrics.inc t.tm.m_timers_stale
      end
      else if live && not p.halted then begin
        (match t.causal with
        | Some c when cause >= 0 ->
            let trace = Obsv.Causal.trace_of c cause in
            t.cur_trace <- trace;
            let node =
              causal_record t ~kind:Obsv.Causal.Timer_fire ~pid:owner ~trace
                ~label
            in
            Obsv.Causal.add_edge c ~kind:Obsv.Causal.Timer ~src:cause
              ~dst:node;
            (* a firing pushed past an outage additionally happens-after the
               reboot, which is what lets blame charge the dead time *)
            if deferred && p.recover_node >= 0 then
              Obsv.Causal.add_edge c ~kind:Obsv.Causal.Outage
                ~src:p.recover_node ~dst:node;
            t.cur_node <- node
        | _ -> ());
        Trace.record t.tr (Timer_fired { t = t.clock_now; owner; label });
        Obsv.Metrics.inc t.tm.m_timers_fired;
        p.handlers.on_timer { engine = t; self = owner } ~label
      end
      else Obsv.Metrics.inc t.tm.m_timers_stale
  | Crash { pid; recover_at } ->
      let p = proc t pid in
      if not p.down then begin
        p.down <- true;
        p.up_at <- recover_at;
        let node =
          causal_record t ~kind:Obsv.Causal.Crash ~pid ~trace:(-1)
            ~label:"crash"
        in
        if node >= 0 then begin
          p.crash_node <- node;
          t.cur_node <- node
        end;
        Trace.record t.tr (Crashed { t = t.clock_now; pid; recover_at });
        Obsv.Metrics.inc t.tm.m_crashes;
        Obsv.Metrics.gauge_add t.tm.m_procs_down 1
      end
  | Recover { pid } ->
      let p = proc t pid in
      if p.down then begin
        p.down <- false;
        p.up_at <- None;
        (match t.causal with
        | Some c ->
            (* program order already chains recover after crash; the Outage
               edge re-labels that gap as downtime for blame *)
            let node =
              causal_record t ~kind:Obsv.Causal.Recover ~pid ~trace:(-1)
                ~label:"recover"
            in
            if p.crash_node >= 0 then
              Obsv.Causal.add_edge c ~kind:Obsv.Causal.Outage
                ~src:p.crash_node ~dst:node;
            p.recover_node <- node;
            t.cur_node <- node
        | None -> ());
        Trace.record t.tr (Recovered { t = t.clock_now; pid });
        Obsv.Metrics.inc t.tm.m_recoveries;
        Obsv.Metrics.gauge_add t.tm.m_procs_down (-1)
      end

(* The profiled dispatch path: stamp clock + allocation counters around
   [dispatch], then charge the deltas to the (payment, process label,
   event kind) site. [cur_trace] is reset first so attribution reads the
   trace the dispatch itself established (deliver/fire under causal
   tracing) and [-1] otherwise — semantically inert, because every
   consumer of [cur_trace] runs inside a dispatch that first sets it. *)
let dispatch_profiled t p ev =
  Obsv.Prof.observe_queue_depth p (Event_queue.length t.queue);
  t.cur_trace <- -1;
  Obsv.Prof.enter p;
  dispatch t ev;
  match ev with
  | Deliver { dst; _ } ->
      Obsv.Prof.leave p ~label:(proc t dst).prof_label ~kind:Obsv.Prof.Deliver
        ~trace:t.cur_trace
  | Fire { owner; _ } ->
      Obsv.Prof.leave p ~label:(proc t owner).prof_label ~kind:Obsv.Prof.Timer
        ~trace:t.cur_trace
  | Crash { pid; _ } ->
      Obsv.Prof.leave p ~label:(proc t pid).prof_label ~kind:Obsv.Prof.Crash
        ~trace:(-1)
  | Recover { pid } ->
      Obsv.Prof.leave p ~label:(proc t pid).prof_label ~kind:Obsv.Prof.Recover
        ~trace:(-1)

(* The armed runtime-verification step: record the event into the flight
   recorder, advance the sampler, then evaluate the monitor at the current
   sim-time. Returns [true] when a stop-on-violation monitor tripped. *)
let watch_step t w ev =
  (match w.recd with
  | None -> ()
  | Some r ->
      let at = t.clock_now in
      (match ev with
      | Deliver { src; dst; msg; _ } ->
          Obsv.Recorder.record r ~at ~kind:"deliver" ~src ~dst
            ~label:(t.tag_of msg)
      | Fire { owner; label; _ } ->
          Obsv.Recorder.record r ~at ~kind:"fire" ~src:owner ~dst:(-1) ~label
      | Crash { pid; _ } ->
          Obsv.Recorder.record r ~at ~kind:"crash" ~src:pid ~dst:(-1)
            ~label:"crash"
      | Recover { pid } ->
          Obsv.Recorder.record r ~at ~kind:"recover" ~src:pid ~dst:(-1)
            ~label:"recover"));
  (match w.samp with
  | None -> ()
  | Some s -> Obsv.Sampler.tick s ~now:t.clock_now);
  match w.mon with
  | None -> false
  | Some m ->
      Obsv.Monitor.step m ~at:t.clock_now;
      Obsv.Monitor.should_stop m

let run ?(horizon = Sim_time.infinity) ?(max_events = 1_000_000) t =
  if not t.started then begin
    t.started <- true;
    for i = 0 to t.nprocs - 1 do
      let p = proc t i in
      if not p.halted then p.handlers.on_start { engine = t; self = i }
    done
  end;
  (match t.prof with None -> () | Some p -> Obsv.Prof.run_begin p);
  let rec loop n =
    if n >= max_events then Event_limit
    else
      match Event_queue.peek_time t.queue with
      | None -> Quiescent
      | Some time when Sim_time.(time > horizon) -> Horizon_reached
      | Some _ -> (
          match Event_queue.pop t.queue with
          | None -> Quiescent
          | Some (time, ev) ->
              t.clock_now <- Sim_time.max t.clock_now time;
              t.events <- t.events + 1;
              Obsv.Metrics.inc t.tm.m_events;
              Obsv.Metrics.set t.tm.m_queue_depth (Event_queue.length t.queue);
              (* one option match per event is the whole off-path cost *)
              (match t.prof with
              | None -> dispatch t ev
              | Some p -> dispatch_profiled t p ev);
              (* same contract for runtime verification: unarmed engines
                 pay exactly this one match *)
              match t.watch with
              | None -> loop (n + 1)
              | Some w ->
                  if watch_step t w ev then Violation_stop else loop (n + 1))
  in
  let status = loop 0 in
  (match t.prof with None -> () | Some p -> Obsv.Prof.run_end p);
  (match t.watch with
  | Some { mon = Some m; _ } -> Obsv.Monitor.finalize m ~at:t.clock_now
  | _ -> ());
  status

let events_processed t = t.events
let queue_depth t = Event_queue.length t.queue
