type 'msg event =
  | Deliver of { src : int; dst : int; msg : 'msg; sent_at : Sim_time.t }
  | Fire of { owner : int; label : string; epoch : int }

type ('msg, 'obs) handlers = {
  on_start : ('msg, 'obs) ctx -> unit;
  on_receive : ('msg, 'obs) ctx -> src:int -> 'msg -> unit;
  on_timer : ('msg, 'obs) ctx -> label:string -> unit;
}

and ('msg, 'obs) proc = {
  handlers : ('msg, 'obs) handlers;
  clock : Clock.t;
  proc_rng : Rng.t;
  timer_epochs : (string, int) Hashtbl.t;
      (* current epoch per label: stale Fire events are dropped *)
  mutable halted : bool;
}

(* Handles resolved once at [create]: the per-event updates below are plain
   integer stores (see lib/obsv), cheap enough to stay on at any scale. *)
and telemetry = {
  m_events : Obsv.Metrics.counter;
  m_sent : Obsv.Metrics.counter;
  m_delivered : Obsv.Metrics.counter;
  m_timers_set : Obsv.Metrics.counter;
  m_timers_fired : Obsv.Metrics.counter;
  m_timers_stale : Obsv.Metrics.counter;
  m_queue_depth : Obsv.Metrics.gauge;
}

and ('msg, 'obs) t = {
  tag_of : 'msg -> string;
  network : Network.t;
  sigma : Sim_time.t;
  root_rng : Rng.t;
  queue : 'msg event Event_queue.t;
  mutable procs : ('msg, 'obs) proc array;
  mutable nprocs : int;
  tr : ('msg, 'obs) Trace.t;
  mutable clock_now : Sim_time.t;
  mutable started : bool;
  tm : telemetry;
}

and ('msg, 'obs) ctx = { engine : ('msg, 'obs) t; self : int }

let silent =
  {
    on_start = (fun _ -> ());
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let telemetry_handles reg =
  let counter = Obsv.Metrics.counter reg in
  {
    m_events = counter ~help:"Events dequeued by the engine" "xchain_events_total";
    m_sent = counter ~help:"Messages sent" "xchain_messages_sent_total";
    m_delivered =
      counter ~help:"Messages delivered" "xchain_messages_delivered_total";
    m_timers_set = counter ~help:"Timers armed" "xchain_timers_set_total";
    m_timers_fired = counter ~help:"Timers fired live" "xchain_timers_fired_total";
    m_timers_stale =
      counter ~help:"Stale timer firings dropped (re-armed or cancelled)"
        "xchain_timers_stale_total";
    m_queue_depth =
      Obsv.Metrics.gauge reg ~help:"Pending events in the engine queue"
        "xchain_event_queue_depth";
  }

let create ~tag_of ~network ?(sigma = Sim_time.zero)
    ?(metrics = Obsv.Metrics.default) ~seed () =
  {
    tag_of;
    network;
    sigma;
    root_rng = Rng.create ~seed;
    queue = Event_queue.create ();
    procs = [||];
    nprocs = 0;
    tr = Trace.create ();
    clock_now = Sim_time.zero;
    started = false;
    tm = telemetry_handles metrics;
  }

let add_process t ?(clock = Clock.perfect) handlers =
  if t.started then invalid_arg "Engine.add_process: engine already running";
  let proc =
    {
      handlers;
      clock;
      proc_rng = Rng.split t.root_rng;
      timer_epochs = Hashtbl.create 8;
      halted = false;
    }
  in
  let pid = t.nprocs in
  let cap = Array.length t.procs in
  if t.nprocs >= cap then begin
    let np = Array.make (Stdlib.max 8 (2 * cap)) proc in
    Array.blit t.procs 0 np 0 t.nprocs;
    t.procs <- np
  end;
  t.procs.(pid) <- proc;
  t.nprocs <- pid + 1;
  pid

let process_count t = t.nprocs
let proc t pid = t.procs.(pid)
let trace t = t.tr
let now t = t.clock_now
let clock_of t pid = (proc t pid).clock
let is_halted t pid = (proc t pid).halted

(* --- ctx operations --- *)

let pid ctx = ctx.self
let rng ctx = (proc ctx.engine ctx.self).proc_rng

let local_now ctx =
  Clock.local_of_global (proc ctx.engine ctx.self).clock ctx.engine.clock_now

let send ctx ~dst msg =
  let t = ctx.engine in
  if dst < 0 || dst >= t.nprocs then invalid_arg "Engine.send: bad destination";
  let tag = t.tag_of msg in
  let p = proc t ctx.self in
  let compute =
    if Sim_time.equal t.sigma Sim_time.zero then Sim_time.zero
    else Rng.int_in p.proc_rng ~lo:0 ~hi:t.sigma
  in
  let depart = Sim_time.add t.clock_now compute in
  let arrive =
    Network.delivery_time t.network ~send_time:depart ~src:ctx.self ~dst ~tag
  in
  Trace.record t.tr (Sent { t = t.clock_now; src = ctx.self; dst; tag; msg });
  Obsv.Metrics.inc t.tm.m_sent;
  ignore
    (Event_queue.push t.queue ~time:arrive
       (Deliver { src = ctx.self; dst; msg; sent_at = t.clock_now }));
  Obsv.Metrics.set t.tm.m_queue_depth (Event_queue.length t.queue)

let set_timer ctx ~deadline ~label =
  let t = ctx.engine in
  let p = proc t ctx.self in
  let epoch =
    match Hashtbl.find_opt p.timer_epochs label with
    | Some e -> e + 1
    | None -> 0
  in
  Hashtbl.replace p.timer_epochs label epoch;
  let global_fire = Clock.global_of_local p.clock deadline in
  (* never fire in the past: a deadline already reached fires "now" *)
  let global_fire = Sim_time.max global_fire t.clock_now in
  Trace.record t.tr
    (Timer_set
       {
         t = t.clock_now;
         owner = ctx.self;
         label;
         local_deadline = deadline;
         global_fire;
       });
  Obsv.Metrics.inc t.tm.m_timers_set;
  if not (Sim_time.is_infinite global_fire) then begin
    ignore
      (Event_queue.push t.queue ~time:global_fire
         (Fire { owner = ctx.self; label; epoch }));
    Obsv.Metrics.set t.tm.m_queue_depth (Event_queue.length t.queue)
  end

let set_timer_after ctx ~after ~label =
  set_timer ctx ~deadline:(Sim_time.add (local_now ctx) after) ~label

let cancel_timer ctx ~label =
  let p = proc ctx.engine ctx.self in
  match Hashtbl.find_opt p.timer_epochs label with
  | None -> ()
  | Some e -> Hashtbl.replace p.timer_epochs label (e + 1)

let observe ctx obs =
  let t = ctx.engine in
  Trace.record t.tr (Observed { t = t.clock_now; pid = ctx.self; obs })

let halt ctx =
  let t = ctx.engine in
  let p = proc t ctx.self in
  if not p.halted then begin
    p.halted <- true;
    Trace.record t.tr (Halted { t = t.clock_now; pid = ctx.self })
  end

(* --- main loop --- *)

type status = Quiescent | Horizon_reached | Event_limit

let dispatch t ev =
  match ev with
  | Deliver { src; dst; msg; sent_at } ->
      let p = proc t dst in
      Trace.record t.tr
        (Delivered
           { t = t.clock_now; sent_at; src; dst; tag = t.tag_of msg; msg });
      Obsv.Metrics.inc t.tm.m_delivered;
      if not p.halted then
        p.handlers.on_receive { engine = t; self = dst } ~src msg
  | Fire { owner; label; epoch } ->
      let p = proc t owner in
      let live =
        match Hashtbl.find_opt p.timer_epochs label with
        | Some e -> e = epoch
        | None -> false
      in
      if live && not p.halted then begin
        Trace.record t.tr (Timer_fired { t = t.clock_now; owner; label });
        Obsv.Metrics.inc t.tm.m_timers_fired;
        p.handlers.on_timer { engine = t; self = owner } ~label
      end
      else Obsv.Metrics.inc t.tm.m_timers_stale

let run ?(horizon = Sim_time.infinity) ?(max_events = 1_000_000) t =
  if not t.started then begin
    t.started <- true;
    for i = 0 to t.nprocs - 1 do
      let p = proc t i in
      if not p.halted then p.handlers.on_start { engine = t; self = i }
    done
  end;
  let rec loop n =
    if n >= max_events then Event_limit
    else
      match Event_queue.peek_time t.queue with
      | None -> Quiescent
      | Some time when Sim_time.(time > horizon) -> Horizon_reached
      | Some _ -> (
          match Event_queue.pop t.queue with
          | None -> Quiescent
          | Some (time, ev) ->
              t.clock_now <- Sim_time.max t.clock_now time;
              Obsv.Metrics.inc t.tm.m_events;
              Obsv.Metrics.set t.tm.m_queue_depth (Event_queue.length t.queue);
              dispatch t ev;
              loop (n + 1))
  in
  loop 0
