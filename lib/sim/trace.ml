type ('msg, 'obs) entry =
  | Sent of { t : Sim_time.t; src : int; dst : int; tag : string; msg : 'msg }
  | Delivered of {
      t : Sim_time.t;
      sent_at : Sim_time.t;
      src : int;
      dst : int;
      tag : string;
      msg : 'msg;
    }
  | Timer_set of {
      t : Sim_time.t;
      owner : int;
      label : string;
      local_deadline : Sim_time.t;
      global_fire : Sim_time.t;
    }
  | Timer_fired of { t : Sim_time.t; owner : int; label : string }
  | Observed of { t : Sim_time.t; pid : int; obs : 'obs }
  | Halted of { t : Sim_time.t; pid : int }
  | Crashed of { t : Sim_time.t; pid : int; recover_at : Sim_time.t option }
  | Recovered of { t : Sim_time.t; pid : int }

type ('msg, 'obs) t = {
  mutable rev_entries : ('msg, 'obs) entry list;
  mutable count : int;
}

let create () = { rev_entries = []; count = 0 }

let record t e =
  t.rev_entries <- e :: t.rev_entries;
  t.count <- t.count + 1

let to_list t = List.rev t.rev_entries
let length t = t.count

let time_of = function
  | Sent { t; _ }
  | Delivered { t; _ }
  | Timer_set { t; _ }
  | Timer_fired { t; _ }
  | Observed { t; _ }
  | Halted { t; _ }
  | Crashed { t; _ }
  | Recovered { t; _ } ->
      t

(* Folding over [rev_entries] directly (newest first, consing onto the
   accumulator) yields chronological order without materialising the O(n)
   intermediate list that [to_list] would. *)
let observations t =
  List.fold_left
    (fun acc e ->
      match e with Observed { t; pid; obs } -> (t, pid, obs) :: acc | _ -> acc)
    [] t.rev_entries

let message_count t =
  List.fold_left
    (fun acc e -> match e with Sent _ -> acc + 1 | _ -> acc)
    0 t.rev_entries

let last_time t =
  match t.rev_entries with [] -> Sim_time.zero | e :: _ -> time_of e

let find_observation t ~f =
  let rec go = function
    | [] -> None
    | Observed { t; pid; obs } :: _ when f pid obs -> Some (t, pid, obs)
    | _ :: rest -> go rest
  in
  go (to_list t)

let pp ~msg ~obs ppf t =
  let pp_entry ppf = function
    | Sent { t; src; dst; tag; msg = m } ->
        Fmt.pf ppf "%a  %d -> %d  send [%s] %a" Sim_time.pp t src dst tag msg m
    | Delivered { t; sent_at; src; dst; tag; msg = m } ->
        Fmt.pf ppf "%a  %d -> %d  recv [%s] %a (sent %a)" Sim_time.pp t src dst
          tag msg m Sim_time.pp sent_at
    | Timer_set { t; owner; label; local_deadline; global_fire } ->
        Fmt.pf ppf "%a  %d       timer-set %s @local %a (fires %a)" Sim_time.pp
          t owner label Sim_time.pp local_deadline Sim_time.pp global_fire
    | Timer_fired { t; owner; label } ->
        Fmt.pf ppf "%a  %d       timer %s" Sim_time.pp t owner label
    | Observed { t; pid; obs = o } ->
        Fmt.pf ppf "%a  %d       obs %a" Sim_time.pp t pid obs o
    | Halted { t; pid } -> Fmt.pf ppf "%a  %d       halted" Sim_time.pp t pid
    | Crashed { t; pid; recover_at } ->
        Fmt.pf ppf "%a  %d       crashed%a" Sim_time.pp t pid
          Fmt.(option (any " (recovers " ++ Sim_time.pp ++ any ")"))
          recover_at
    | Recovered { t; pid } ->
        Fmt.pf ppf "%a  %d       recovered" Sim_time.pp t pid
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_entry) (to_list t)

(* minimal JSON string escaping: quotes, backslashes, control chars *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_jsonl ~msg ~obs t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iteri
    (fun seq entry ->
      match entry with
      | Sent { t; src; dst; tag; msg = m } ->
          line
            {|{"seq":%d,"kind":"sent","t":%d,"src":%d,"dst":%d,"tag":"%s","msg":"%s"}|}
            seq t src dst (json_escape tag) (json_escape (msg m))
      | Delivered { t; sent_at; src; dst; tag; msg = m } ->
          line
            {|{"seq":%d,"kind":"delivered","t":%d,"sent_at":%d,"src":%d,"dst":%d,"tag":"%s","msg":"%s"}|}
            seq t sent_at src dst (json_escape tag) (json_escape (msg m))
      | Timer_set { t; owner; label; local_deadline; global_fire } ->
          line
            {|{"seq":%d,"kind":"timer_set","t":%d,"owner":%d,"label":"%s","local_deadline":%s,"global_fire":%s}|}
            seq t owner (json_escape label)
            (if Sim_time.is_infinite local_deadline then {|"inf"|}
             else string_of_int local_deadline)
            (if Sim_time.is_infinite global_fire then {|"inf"|}
             else string_of_int global_fire)
      | Timer_fired { t; owner; label } ->
          line {|{"seq":%d,"kind":"timer_fired","t":%d,"owner":%d,"label":"%s"}|}
            seq t owner (json_escape label)
      | Observed { t; pid; obs = o } ->
          line {|{"seq":%d,"kind":"observed","t":%d,"pid":%d,"obs":"%s"}|} seq t
            pid
            (json_escape (obs o))
      | Halted { t; pid } ->
          line {|{"seq":%d,"kind":"halted","t":%d,"pid":%d}|} seq t pid
      | Crashed { t; pid; recover_at } ->
          line {|{"seq":%d,"kind":"crashed","t":%d,"pid":%d,"recover_at":%s}|}
            seq t pid
            (match recover_at with
            | None -> "null"
            | Some r -> string_of_int r)
      | Recovered { t; pid } ->
          line {|{"seq":%d,"kind":"recovered","t":%d,"pid":%d}|} seq t pid)
    (to_list t);
  Buffer.contents buf
