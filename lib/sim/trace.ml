type ('msg, 'obs) entry =
  | Sent of { t : Sim_time.t; src : int; dst : int; tag : string; msg : 'msg }
  | Delivered of {
      t : Sim_time.t;
      sent_at : Sim_time.t;
      src : int;
      dst : int;
      tag : string;
      msg : 'msg;
    }
  | Timer_set of {
      t : Sim_time.t;
      owner : int;
      label : string;
      local_deadline : Sim_time.t;
      global_fire : Sim_time.t;
    }
  | Timer_fired of { t : Sim_time.t; owner : int; label : string }
  | Observed of { t : Sim_time.t; pid : int; obs : 'obs }
  | Halted of { t : Sim_time.t; pid : int }
  | Crashed of { t : Sim_time.t; pid : int; recover_at : Sim_time.t option }
  | Recovered of { t : Sim_time.t; pid : int }

type ('msg, 'obs) t = {
  capacity : int option;
  mutable rev_entries : ('msg, 'obs) entry list; (* unbounded mode *)
  mutable ring : ('msg, 'obs) entry option array; (* bounded mode *)
  mutable head : int; (* ring index of the oldest kept entry *)
  mutable kept : int;
  mutable count : int; (* total recorded, including dropped *)
  mutable dropped : int;
  mutable hooks : (('msg, 'obs) entry -> unit) list; (* reversed *)
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity must be positive"
  | _ -> ());
  {
    capacity;
    rev_entries = [];
    ring = (match capacity with None -> [||] | Some c -> Array.make c None);
    head = 0;
    kept = 0;
    count = 0;
    dropped = 0;
    hooks = [];
  }

let on_record t f = t.hooks <- f :: t.hooks

let record t e =
  (match t.hooks with
  | [] -> ()
  | hooks -> List.iter (fun f -> f e) (List.rev hooks));
  (match t.capacity with
  | None -> t.rev_entries <- e :: t.rev_entries
  | Some cap ->
      if t.kept = cap then begin
        (* overwrite the oldest: the window slides forward *)
        t.ring.(t.head) <- Some e;
        t.head <- (t.head + 1) mod cap;
        t.dropped <- t.dropped + 1
      end
      else begin
        t.ring.((t.head + t.kept) mod cap) <- Some e;
        t.kept <- t.kept + 1
      end);
  t.count <- t.count + 1

(* Newest-first fold covering both storage modes; chronological consumers
   cons onto their accumulator. *)
let fold_newest f acc t =
  match t.capacity with
  | None -> List.fold_left f acc t.rev_entries
  | Some cap ->
      let acc = ref acc in
      for i = t.kept - 1 downto 0 do
        match t.ring.((t.head + i) mod cap) with
        | Some e -> acc := f !acc e
        | None -> ()
      done;
      !acc

let to_list t = fold_newest (fun acc e -> e :: acc) [] t
let length t = t.count
let dropped_count t = t.dropped

let time_of = function
  | Sent { t; _ }
  | Delivered { t; _ }
  | Timer_set { t; _ }
  | Timer_fired { t; _ }
  | Observed { t; _ }
  | Halted { t; _ }
  | Crashed { t; _ }
  | Recovered { t; _ } ->
      t

(* Folding newest-first (consing onto the accumulator) yields chronological
   order without materialising the O(n) intermediate list that [to_list]
   would. *)
let observations t =
  fold_newest
    (fun acc e ->
      match e with Observed { t; pid; obs } -> (t, pid, obs) :: acc | _ -> acc)
    [] t

let message_count t =
  fold_newest (fun acc e -> match e with Sent _ -> acc + 1 | _ -> acc) 0 t

let last_time t =
  fold_newest (fun acc e -> match acc with None -> Some (time_of e) | some -> some)
    None t
  |> Option.value ~default:Sim_time.zero

let find_observation t ~f =
  let rec go = function
    | [] -> None
    | Observed { t; pid; obs } :: _ when f pid obs -> Some (t, pid, obs)
    | _ :: rest -> go rest
  in
  go (to_list t)

let pp ~msg ~obs ppf t =
  let pp_entry ppf = function
    | Sent { t; src; dst; tag; msg = m } ->
        Fmt.pf ppf "%a  %d -> %d  send [%s] %a" Sim_time.pp t src dst tag msg m
    | Delivered { t; sent_at; src; dst; tag; msg = m } ->
        Fmt.pf ppf "%a  %d -> %d  recv [%s] %a (sent %a)" Sim_time.pp t src dst
          tag msg m Sim_time.pp sent_at
    | Timer_set { t; owner; label; local_deadline; global_fire } ->
        Fmt.pf ppf "%a  %d       timer-set %s @local %a (fires %a)" Sim_time.pp
          t owner label Sim_time.pp local_deadline Sim_time.pp global_fire
    | Timer_fired { t; owner; label } ->
        Fmt.pf ppf "%a  %d       timer %s" Sim_time.pp t owner label
    | Observed { t; pid; obs = o } ->
        Fmt.pf ppf "%a  %d       obs %a" Sim_time.pp t pid obs o
    | Halted { t; pid } -> Fmt.pf ppf "%a  %d       halted" Sim_time.pp t pid
    | Crashed { t; pid; recover_at } ->
        Fmt.pf ppf "%a  %d       crashed%a" Sim_time.pp t pid
          Fmt.(option (any " (recovers " ++ Sim_time.pp ++ any ")"))
          recover_at
    | Recovered { t; pid } ->
        Fmt.pf ppf "%a  %d       recovered" Sim_time.pp t pid
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_entry) (to_list t)

(* minimal JSON string escaping: quotes, backslashes, control chars *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_jsonl ~msg ~obs t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iteri
    (fun seq entry ->
      match entry with
      | Sent { t; src; dst; tag; msg = m } ->
          line
            {|{"seq":%d,"kind":"sent","t":%d,"src":%d,"dst":%d,"tag":"%s","msg":"%s"}|}
            seq t src dst (json_escape tag) (json_escape (msg m))
      | Delivered { t; sent_at; src; dst; tag; msg = m } ->
          line
            {|{"seq":%d,"kind":"delivered","t":%d,"sent_at":%d,"src":%d,"dst":%d,"tag":"%s","msg":"%s"}|}
            seq t sent_at src dst (json_escape tag) (json_escape (msg m))
      | Timer_set { t; owner; label; local_deadline; global_fire } ->
          line
            {|{"seq":%d,"kind":"timer_set","t":%d,"owner":%d,"label":"%s","local_deadline":%s,"global_fire":%s}|}
            seq t owner (json_escape label)
            (if Sim_time.is_infinite local_deadline then {|"inf"|}
             else string_of_int local_deadline)
            (if Sim_time.is_infinite global_fire then {|"inf"|}
             else string_of_int global_fire)
      | Timer_fired { t; owner; label } ->
          line {|{"seq":%d,"kind":"timer_fired","t":%d,"owner":%d,"label":"%s"}|}
            seq t owner (json_escape label)
      | Observed { t; pid; obs = o } ->
          line {|{"seq":%d,"kind":"observed","t":%d,"pid":%d,"obs":"%s"}|} seq t
            pid
            (json_escape (obs o))
      | Halted { t; pid } ->
          line {|{"seq":%d,"kind":"halted","t":%d,"pid":%d}|} seq t pid
      | Crashed { t; pid; recover_at } ->
          line {|{"seq":%d,"kind":"crashed","t":%d,"pid":%d,"recover_at":%s}|}
            seq t pid
            (match recover_at with
            | None -> "null"
            | Some r -> string_of_int r)
      | Recovered { t; pid } ->
          line {|{"seq":%d,"kind":"recovered","t":%d,"pid":%d}|} seq t pid)
    (to_list t);
  Buffer.contents buf
