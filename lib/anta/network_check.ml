module A = Automaton

type issue =
  | Dangling_send of { from_ : int; state : A.state; to_ : int }
  | Deaf_receiver of { from_ : int; to_ : int }
  | Unheard_listener of { at : int; state : A.state; from_ : int }

let severity = function
  | Dangling_send _ | Deaf_receiver _ -> `Error
  | Unheard_listener _ -> `Warning

let pp_issue ppf = function
  | Dangling_send { from_; state; to_ } ->
      Fmt.pf ppf "pid %d (state %s) sends to pid %d, which runs no automaton"
        from_ state to_
  | Deaf_receiver { from_; to_ } ->
      Fmt.pf ppf
        "pid %d sends to pid %d, but %d has no receive transition for \
         messages from %d"
        from_ to_ to_ from_
  | Unheard_listener { at; state; from_ } ->
      Fmt.pf ppf
        "pid %d (state %s) waits for messages from pid %d, which never \
         sends to %d"
        at state from_ at

(* (sender, receiver) channels implied by output states / receive guards *)
let sends_of auto =
  List.filter_map
    (fun st ->
      match A.node auto st with
      | Some (A.Output { to_; _ }) -> Some (st, to_)
      | _ -> None)
    (A.states auto)

let listens_of auto =
  List.concat_map
    (fun st ->
      match A.node auto st with
      | Some (A.Input branches) ->
          List.filter_map
            (fun (b : ('msg, 'obs) A.branch) ->
              match b.A.guard with
              | A.Receive { from_; _ } -> Some (st, from_)
              | A.Deadline _ -> None)
            branches
      | _ -> [])
    (A.states auto)

let check network =
  let autos = network in
  let has_pid pid = List.mem_assoc pid autos in
  let issues = ref [] in
  let add i = issues := i :: !issues in
  (* send side *)
  List.iter
    (fun (from_, auto) ->
      List.iter
        (fun (state, to_) ->
          if not (has_pid to_) then add (Dangling_send { from_; state; to_ })
          else
            let target = List.assoc to_ autos in
            let listens =
              List.exists (fun (_, f) -> f = from_) (listens_of target)
            in
            if not listens then add (Deaf_receiver { from_; to_ }))
        (sends_of auto))
    autos;
  (* receive side *)
  List.iter
    (fun (at, auto) ->
      List.iter
        (fun (state, from_) ->
          match List.assoc_opt from_ autos with
          | None -> add (Unheard_listener { at; state; from_ })
          | Some sender ->
              let sends_here =
                List.exists (fun (_, t) -> t = at) (sends_of sender)
              in
              if not sends_here then add (Unheard_listener { at; state; from_ }))
        (listens_of auto))
    autos;
  (* dedup Deaf_receiver per channel, errors first *)
  let seen = Hashtbl.create 16 in
  let deduped =
    List.filter
      (fun i ->
        match i with
        | Deaf_receiver { from_; to_ } ->
            if Hashtbl.mem seen (from_, to_) then false
            else begin
              Hashtbl.add seen (from_, to_) ();
              true
            end
        | _ -> true)
      (List.rev !issues)
  in
  List.stable_sort
    (fun a b ->
      match (severity a, severity b) with
      | `Error, `Warning -> -1
      | `Warning, `Error -> 1
      | _ -> 0)
    deduped

let errors issues = List.filter (fun i -> severity i = `Error) issues
