(** Trace conformance: did a participant behave like its automaton?

    Given an automaton and the full engine trace of a run, {!check} replays
    the events that concern one pid — its sends, its deliveries, and its
    timer firings — against the automaton's structure, and reports the
    first deviation. It never executes the automaton's side-effect hooks,
    so it is safe to run post-hoc on any trace.

    This is runtime verification in the classic sense: an honest executor
    run is conformant by construction (tested), while Byzantine
    substitutions (a thief escrow, a premature refunder) are flagged with
    a concrete witness. Because deviations are detected from the {e trace}
    alone, the checker would also work on message logs imported from a
    real deployment.

    Conformance is structural: output states must be matched by a send to
    the right destination (message payloads are re-signed per run, so
    their bytes are not compared — the wire tag is), receive transitions
    must be enabled by an acceptable delivered message exactly as the
    executor would fire them, and deadline transitions must be justified
    by this pid's timer events. *)

type deviation = {
  at : Sim.Sim_time.t;  (** global time of the offending event *)
  state : Automaton.state;  (** automaton state when it happened *)
  reason : string;
}

val check :
  ('msg, 'obs) Automaton.t ->
  pid:int ->
  tag_of:('msg -> string) ->
  ('msg, 'obs) Sim.Trace.t ->
  (unit, deviation) result

val pp_deviation : Format.formatter -> deviation -> unit
