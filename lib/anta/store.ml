type 'msg t = {
  clocks : (string, Sim.Sim_time.t) Hashtbl.t;
  datas : (string, 'msg) Hashtbl.t;
}


let create () = { clocks = Hashtbl.create 8; datas = Hashtbl.create 8 }
let set_clock t name v = Hashtbl.replace t.clocks name v

let clock t name =
  match Hashtbl.find_opt t.clocks name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Anta.Store.clock: %s unset" name)

let clock_opt t name = Hashtbl.find_opt t.clocks name
let set_data t name v = Hashtbl.replace t.datas name v

let data t name =
  match Hashtbl.find_opt t.datas name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Anta.Store.data: %s unset" name)

let data_opt t name = Hashtbl.find_opt t.datas name

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let clock_vars t = keys t.clocks
let data_vars t = keys t.datas
