(** Variable store of a timed automaton.

    The paper's automata keep two kinds of variables: {e clock variables}
    written by [x := now] transitions (holding local-time instants), and —
    implicitly, to forward certificates and promises — the payloads of
    received messages. The store holds both. Reads of unset variables raise
    [Not_found]-style errors with the variable name, which the
    well-formedness checker ({!Automaton.check}) rules out statically for
    conforming automata. *)

type 'msg t

val create : unit -> 'msg t
val set_clock : 'msg t -> string -> Sim.Sim_time.t -> unit
val clock : 'msg t -> string -> Sim.Sim_time.t
(** Raises [Invalid_argument] naming the variable if unset. *)

val clock_opt : 'msg t -> string -> Sim.Sim_time.t option
val set_data : 'msg t -> string -> 'msg -> unit
val data : 'msg t -> string -> 'msg
val data_opt : 'msg t -> string -> 'msg option
val clock_vars : 'msg t -> string list
val data_vars : 'msg t -> string list
