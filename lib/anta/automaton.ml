type state = string

type ('msg, 'obs) guard =
  | Receive of { from_ : int; describe : string; accept : 'msg -> bool }
  | Deadline of { base : string; offset : Sim.Sim_time.t }

type ('msg, 'obs) branch = {
  guard : ('msg, 'obs) guard;
  save_msg : string option;
  save_now : string list;
  b_act :
    ('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> 'msg option -> unit;
  next : state;
}

type ('msg, 'obs) node =
  | Output of {
      to_ : int;
      message : ('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> 'msg;
      o_act : ('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> unit;
      next : state;
    }
  | Input of ('msg, 'obs) branch list
  | Final of { f_act : ('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> unit }

type ('msg, 'obs) t = {
  name : string;
  initial : state;
  nodes : (state * ('msg, 'obs) node) list;
  table : (state, ('msg, 'obs) node) Hashtbl.t;
}

let make ~name ~initial ~nodes =
  let table = Hashtbl.create (List.length nodes) in
  List.iter
    (fun (st, node) ->
      if Hashtbl.mem table st then
        invalid_arg (Printf.sprintf "Automaton %s: duplicate state %s" name st);
      Hashtbl.add table st node)
    nodes;
  if not (Hashtbl.mem table initial) then
    invalid_arg
      (Printf.sprintf "Automaton %s: unknown initial state %s" name initial);
  { name; initial; nodes; table }

let name t = t.name
let initial t = t.initial
let node t st = Hashtbl.find_opt t.table st
let states t = List.map fst t.nodes

type check_error =
  | Unknown_target of { from_ : state; target : state }
  | Empty_input of state
  | Unassigned_clock of { at : state; var : string }
  | No_final_reachable
  | Unreachable_state of state

let pp_check_error ppf = function
  | Unknown_target { from_; target } ->
      Fmt.pf ppf "transition from %s targets unknown state %s" from_ target
  | Empty_input st -> Fmt.pf ppf "input state %s has no outgoing transition" st
  | Unassigned_clock { at; var } ->
      Fmt.pf ppf
        "deadline guard at %s reads clock variable %s not assigned on every \
         incoming path"
        at var
  | No_final_reachable -> Fmt.string ppf "no final state is reachable"
  | Unreachable_state st -> Fmt.pf ppf "state %s is unreachable" st

let successors node =
  match node with
  | Output { next; _ } -> [ next ]
  | Input branches -> List.map (fun b -> b.next) branches
  | Final _ -> []

module SS = Set.Make (String)

(* Forward dataflow: for each state, the set of clock vars assigned on every
   path from the initial state (must-analysis; meet = intersection). *)
let must_assigned t =
  let all_vars =
    List.fold_left
      (fun acc (_, node) ->
        match node with
        | Input branches ->
            List.fold_left
              (fun acc b -> List.fold_left (fun a v -> SS.add v a) acc b.save_now)
              acc branches
        | Output _ | Final _ -> acc)
      SS.empty t.nodes
  in
  let assigned : (state, SS.t) Hashtbl.t = Hashtbl.create 16 in
  let get st = Option.value ~default:all_vars (Hashtbl.find_opt assigned st) in
  Hashtbl.replace assigned t.initial SS.empty;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (st, node) ->
        if Hashtbl.mem assigned st then begin
          let entry = get st in
          let propagate target gained =
            let flow = SS.union entry gained in
            let old = Hashtbl.find_opt assigned target in
            let updated =
              match old with None -> flow | Some o -> SS.inter o flow
            in
            let same =
              match old with None -> false | Some o -> SS.equal o updated
            in
            if not same then begin
              Hashtbl.replace assigned target updated;
              changed := true
            end
          in
          match node with
          | Output { next; _ } -> propagate next SS.empty
          | Input branches ->
              List.iter
                (fun b -> propagate b.next (SS.of_list b.save_now))
                branches
          | Final _ -> ()
        end)
      t.nodes
  done;
  get

let check t =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let known st = Hashtbl.mem t.table st in
  List.iter
    (fun (st, node) ->
      List.iter
        (fun target -> if not (known target) then err (Unknown_target { from_ = st; target }))
        (successors node);
      match node with
      | Input [] -> err (Empty_input st)
      | Input _ | Output _ | Final _ -> ())
    t.nodes;
  if !errors = [] then begin
    (* reachability *)
    let reachable = Hashtbl.create 16 in
    let rec visit st =
      if not (Hashtbl.mem reachable st) then begin
        Hashtbl.add reachable st ();
        match node t st with
        | Some n -> List.iter visit (successors n)
        | None -> ()
      end
    in
    visit t.initial;
    List.iter
      (fun (st, _) ->
        if not (Hashtbl.mem reachable st) then err (Unreachable_state st))
      t.nodes;
    let final_reachable =
      List.exists
        (fun (st, node) ->
          Hashtbl.mem reachable st
          && match node with Final _ -> true | _ -> false)
        t.nodes
    in
    if not final_reachable then err No_final_reachable;
    (* deadline guards read assigned clocks *)
    let assigned_at = must_assigned t in
    List.iter
      (fun (st, node) ->
        if Hashtbl.mem reachable st then
          match node with
          | Input branches ->
              List.iter
                (fun b ->
                  match b.guard with
                  | Deadline { base; _ } ->
                      if not (SS.mem base (assigned_at st)) then
                        err (Unassigned_clock { at = st; var = base })
                  | Receive _ -> ())
                branches
          | Output _ | Final _ -> ())
      t.nodes
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let no_act2 _ _ = ()
let no_act3 _ _ _ = ()

let output ~to_ ?(act = no_act2) ~message ~next () =
  Output { to_; message; o_act = act; next }

let input branches = Input branches
let final ?(act = no_act2) () = Final { f_act = act }

let on_receive ~from_ ?(describe = "msg") ~accept ?save_msg ?(save_now = [])
    ?(act = no_act3) ~next () =
  { guard = Receive { from_; describe; accept }; save_msg; save_now; b_act = act; next }

let on_deadline ~base ~offset ?(save_now = []) ?(act = no_act3) ~next () =
  {
    guard = Deadline { base; offset };
    save_msg = None;
    save_now;
    b_act = act;
    next;
  }

let dot_escape s =
  String.map (fun c -> if c = '"' then '\'' else c) s

let to_dot t =
  let buf = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "digraph \"%s\" {\n  rankdir=LR;\n  node [fontsize=10];\n"
    (dot_escape t.name);
  List.iter
    (fun (st, node) ->
      match node with
      | Output _ ->
          bpf "  \"%s\" [shape=box style=filled fillcolor=lightgrey];\n"
            (dot_escape st)
      | Input _ -> bpf "  \"%s\" [shape=circle];\n" (dot_escape st)
      | Final _ -> bpf "  \"%s\" [shape=doublecircle];\n" (dot_escape st))
    t.nodes;
  bpf "  \"__start\" [shape=point];\n  \"__start\" -> \"%s\";\n"
    (dot_escape t.initial);
  List.iter
    (fun (st, node) ->
      match node with
      | Output { to_; next; _ } ->
          bpf "  \"%s\" -> \"%s\" [label=\"s(%d, ·)\"];\n" (dot_escape st)
            (dot_escape next) to_
      | Input branches ->
          List.iter
            (fun b ->
              let label =
                match b.guard with
                | Receive { from_; describe; _ } ->
                    Printf.sprintf "r(%d, %s)" from_ describe
                | Deadline { base; offset } ->
                    Printf.sprintf "now >= %s + %s" base
                      (Sim.Sim_time.to_string offset)
              in
              let label =
                match b.save_now with
                | [] -> label
                | vars ->
                    label ^ "\\n"
                    ^ String.concat "; "
                        (List.map (fun v -> v ^ " := now") vars)
              in
              bpf "  \"%s\" -> \"%s\" [label=\"%s\"];\n" (dot_escape st)
                (dot_escape b.next) (dot_escape label))
            branches
      | Final _ -> ())
    t.nodes;
  bpf "}\n";
  Buffer.contents buf
