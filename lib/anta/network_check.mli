(** Network-level well-formedness of an Asynchronous Network of Timed
    Automata.

    {!Automaton.check} validates each automaton in isolation; this module
    checks the {e network}: the collection of automata that will run
    together, one per pid. Property C demands that each participant can
    abide by the protocol — which fails not only when an automaton is
    internally broken, but also when the network's channels cannot carry
    the prescribed conversation:

    - {b dangling sends}: an output state addresses a pid that runs no
      automaton in the network;
    - {b deaf receivers}: an automaton sends to a peer whose automaton has
      {e no} receive transition listening to that sender, anywhere — the
      message can never be consumed, so the sender's downstream
      expectations are unmeetable;
    - {b unheard listeners}: a receive transition waits on a sender that
      never addresses this automaton — the transition is dead, and if it
      is the only way forward, so is the automaton (over-approximated: a
      warning, as Byzantine peers may still deliver).

    The analysis is structural (per-channel, ignoring message predicates),
    so it over-approximates reachability: a clean result is necessary but
    not sufficient for liveness; a dirty one pinpoints a wiring bug. The
    Figure 2 network passes for every chain length — tested. *)

type issue =
  | Dangling_send of { from_ : int; state : Automaton.state; to_ : int }
  | Deaf_receiver of { from_ : int; to_ : int }
      (** [from_] sends to [to_], which never listens to [from_] *)
  | Unheard_listener of { at : int; state : Automaton.state; from_ : int }
      (** [at] waits for a message from [from_], which never sends to
          [at] *)

val severity : issue -> [ `Error | `Warning ]
(** Dangling sends and deaf receivers are errors; unheard listeners are
    warnings. *)

val check :
  (int * ('msg, 'obs) Automaton.t) list -> issue list
(** Analyse a network given as (pid, automaton) pairs. The result lists
    every issue, errors first. *)

val errors : issue list -> issue list
val pp_issue : Format.formatter -> issue -> unit
