open Sim

type ('msg, 'obs) running = {
  auto : ('msg, 'obs) Automaton.t;
  sstore : 'msg Store.t;
  mutable state : Automaton.state;
  mutable rev_visited : Automaton.state list;
  mutable finished : bool;
  mutable pending : (int * 'msg) list; (* oldest first *)
}

let current_state r = r.state
let visited r = List.rev r.rev_visited
let terminated r = r.finished
let store r = r.sstore
let pending_count r = List.length r.pending

let timer_label st idx = Printf.sprintf "%s#%d" st idx

let branches_of r =
  match Automaton.node r.auto r.state with
  | Some (Automaton.Input branches) -> branches
  | _ -> []

let disarm_deadlines ctx r =
  List.iteri
    (fun idx (b : ('msg, 'obs) Automaton.branch) ->
      match b.guard with
      | Automaton.Deadline _ ->
          Engine.cancel_timer ctx ~label:(timer_label r.state idx)
      | Automaton.Receive _ -> ())
    (branches_of r)

let take_branch ctx r (b : ('msg, 'obs) Automaton.branch) msg =
  disarm_deadlines ctx r;
  let now = Engine.local_now ctx in
  List.iter (fun v -> Store.set_clock r.sstore v now) b.save_now;
  (match (b.save_msg, msg) with
  | Some var, Some m -> Store.set_data r.sstore var m
  | Some var, None ->
      invalid_arg
        (Printf.sprintf "Anta.Executor: save_msg %s on a deadline branch" var)
  | None, _ -> ());
  b.b_act ctx r.sstore msg;
  b.next

(* Try to fire a receive branch against the pending pool. Branch order is the
   priority; within one branch the pool is scanned oldest-first. *)
let try_fire_receive r =
  let rec find_in_pool from_ accept seen = function
    | [] -> None
    | ((src, m) as item) :: rest ->
        if src = from_ && accept m then Some (m, List.rev_append seen rest)
        else find_in_pool from_ accept (item :: seen) rest
  in
  let rec scan = function
    | [] -> None
    | (b : ('msg, 'obs) Automaton.branch) :: rest -> (
        match b.guard with
        | Automaton.Receive { from_; accept; _ } -> (
            match find_in_pool from_ accept [] r.pending with
            | Some (m, pool) -> Some (b, m, pool)
            | None -> scan rest)
        | Automaton.Deadline _ -> scan rest)
  in
  scan (branches_of r)

let rec enter ctx on_final r st =
  r.state <- st;
  r.rev_visited <- st :: r.rev_visited;
  match Automaton.node r.auto st with
  | None ->
      invalid_arg
        (Printf.sprintf "Anta.Executor: automaton %s reached unknown state %s"
           (Automaton.name r.auto) st)
  | Some (Automaton.Output { to_; message; o_act; next }) ->
      o_act ctx r.sstore;
      Engine.send ctx ~dst:to_ (message ctx r.sstore);
      enter ctx on_final r next
  | Some (Automaton.Final { f_act }) ->
      r.finished <- true;
      f_act ctx r.sstore;
      on_final ctx r.sstore;
      Engine.halt ctx
  | Some (Automaton.Input branches) -> (
      List.iteri
        (fun idx (b : ('msg, 'obs) Automaton.branch) ->
          match b.guard with
          | Automaton.Deadline { base; offset } ->
              let deadline = Sim_time.add (Store.clock r.sstore base) offset in
              Engine.set_timer ctx ~deadline ~label:(timer_label st idx)
          | Automaton.Receive _ -> ())
        branches;
      (* a message already in the pool may enable a transition right away *)
      match try_fire_receive r with
      | Some (b, m, pool) ->
          r.pending <- pool;
          let next = take_branch ctx r b (Some m) in
          enter ctx on_final r next
      | None -> ())

let handlers auto ?(init_clocks = []) ?(on_final = fun _ _ -> ()) () =
  let r =
    {
      auto;
      sstore = Store.create ();
      state = Automaton.initial auto;
      rev_visited = [];
      finished = false;
      pending = [];
    }
  in
  let on_start ctx =
    let now = Engine.local_now ctx in
    List.iter (fun v -> Store.set_clock r.sstore v now) init_clocks;
    enter ctx on_final r (Automaton.initial auto)
  in
  let on_receive ctx ~src msg =
    if not r.finished then begin
      r.pending <- r.pending @ [ (src, msg) ];
      match Automaton.node r.auto r.state with
      | Some (Automaton.Input _) -> (
          match try_fire_receive r with
          | Some (b, m, pool) ->
              r.pending <- pool;
              let next = take_branch ctx r b (Some m) in
              enter ctx on_final r next
          | None -> ())
      | _ -> ()
    end
  in
  let on_timer ctx ~label =
    if not r.finished then
      let branches = branches_of r in
      let rec find idx = function
        | [] -> ()
        | (b : ('msg, 'obs) Automaton.branch) :: rest -> (
            if String.equal label (timer_label r.state idx) then
              match b.guard with
              | Automaton.Deadline _ ->
                  let next = take_branch ctx r b None in
                  enter ctx on_final r next
              | Automaton.Receive _ -> ()
            else find (idx + 1) rest)
      in
      find 0 branches
  in
  ({ Engine.on_start; on_receive; on_timer }, r)
