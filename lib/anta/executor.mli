(** Executor: runs an {!Automaton.t} as an engine process.

    Semantics implemented, matching the paper's informal ANTA semantics:

    - entering an output state performs its action and send, then moves on
      immediately (the engine's [sigma] models the "bounded amount of time
      calculating");
    - entering an input state arms one engine timer per deadline branch and
      then consults the {e pending pool}: messages that arrived while the
      automaton was elsewhere are not lost, they wait until a state with a
      matching receive transition is entered (channel semantics — the
      network holds undelivered-to-the-automaton messages);
    - when several transitions are enabled simultaneously, the textually
      first branch wins, making runs deterministic;
    - entering a final state performs its action and halts the process.

    The executor also records the visited state sequence, which tests use to
    assert protocol paths. *)

type ('msg, 'obs) running

val handlers :
  ('msg, 'obs) Automaton.t ->
  ?init_clocks:string list ->
  ?on_final:(('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> unit) ->
  unit ->
  ('msg, 'obs) Sim.Engine.handlers * ('msg, 'obs) running
(** [init_clocks] are clock variables assigned [now] when the process starts
    (the automaton's birth time); [on_final] runs after the final state's own
    action. The [running] handle exposes execution introspection. *)

val current_state : ('msg, 'obs) running -> Automaton.state
val visited : ('msg, 'obs) running -> Automaton.state list
(** In visit order, initial state first. *)

val terminated : ('msg, 'obs) running -> bool
val store : ('msg, 'obs) running -> 'msg Store.t
val pending_count : ('msg, 'obs) running -> int
(** Messages delivered but not yet consumed by any transition. *)
