module A = Automaton

type deviation = { at : Sim.Sim_time.t; state : A.state; reason : string }

let pp_deviation ppf d =
  Fmt.pf ppf "at t=%a in state %s: %s" Sim.Sim_time.pp d.at d.state d.reason

type 'msg cursor = {
  mutable state : A.state;
  mutable pool : (int * 'msg) list;
  mutable finished : bool;
  mutable deviation : deviation option;
}

let fail c ~at reason =
  if c.deviation = None then c.deviation <- Some { at; state = c.state; reason }

(* Mirror of Executor.try_fire_receive, effect-free. *)
let try_fire auto c =
  match A.node auto c.state with
  | Some (A.Input branches) ->
      let rec find_in_pool from_ accept seen = function
        | [] -> None
        | ((src, m) as item) :: rest ->
            if src = from_ && accept m then Some (m, List.rev_append seen rest)
            else find_in_pool from_ accept (item :: seen) rest
      in
      let rec scan = function
        | [] -> None
        | (b : ('msg, 'obs) A.branch) :: rest -> (
            match b.A.guard with
            | A.Receive { from_; accept; _ } -> (
                match find_in_pool from_ accept [] c.pool with
                | Some (_, pool) -> Some (b, pool)
                | None -> scan rest)
            | A.Deadline _ -> scan rest)
      in
      scan branches
  | _ -> None

(* Enter a state; consume pool-enabled receive transitions greedily, exactly
   as the executor does, stopping at an output state (which awaits a Sent
   event), a final state, or a quiescent input state. *)
let rec settle auto c ~at =
  match A.node auto c.state with
  | None -> fail c ~at (Printf.sprintf "unknown state %s" c.state)
  | Some (A.Final _) -> c.finished <- true
  | Some (A.Output _) -> () (* wait for the Sent event *)
  | Some (A.Input _) -> (
      match try_fire auto c with
      | Some (b, pool) ->
          c.pool <- pool;
          c.state <- b.A.next;
          settle auto c ~at
      | None -> ())

let on_delivered auto c ~at ~src msg =
  if not c.finished then begin
    c.pool <- c.pool @ [ (src, msg) ];
    settle auto c ~at
  end

let on_sent auto tag_of c ~at ~dst msg =
  if c.finished then fail c ~at "sent a message after reaching a final state"
  else
    match A.node auto c.state with
    | Some (A.Output { to_; next; _ }) ->
        if dst <> to_ then
          fail c ~at
            (Printf.sprintf "sent [%s] to %d, automaton sends to %d"
               (tag_of msg) dst to_)
        else begin
          c.state <- next;
          settle auto c ~at
        end
    | Some (A.Input _) ->
        fail c ~at
          (Printf.sprintf "sent [%s] to %d from an input (waiting) state"
             (tag_of msg) dst)
    | Some (A.Final _) -> fail c ~at "sent from a final state"
    | None -> fail c ~at "sent from an unknown state"

let split_label label =
  match String.rindex_opt label '#' with
  | None -> None
  | Some i ->
      let state = String.sub label 0 i in
      let idx = String.sub label (i + 1) (String.length label - i - 1) in
      Option.map (fun k -> (state, k)) (int_of_string_opt idx)

let on_timer auto c ~at ~label =
  if not c.finished then
    match split_label label with
    | None ->
        fail c ~at (Printf.sprintf "fired a non-automaton timer %S" label)
    | Some (state, idx) ->
        if not (String.equal state c.state) then
          fail c ~at
            (Printf.sprintf "timer %S fired but the automaton is in %s" label
               c.state)
        else (
          match A.node auto c.state with
          | Some (A.Input branches) -> (
              match List.nth_opt branches idx with
              | Some (b : ('msg, 'obs) A.branch) -> (
                  match b.A.guard with
                  | A.Deadline _ ->
                      c.state <- b.A.next;
                      settle auto c ~at
                  | A.Receive _ ->
                      fail c ~at
                        (Printf.sprintf "timer %S names a receive branch" label))
              | None ->
                  fail c ~at (Printf.sprintf "timer %S names no branch" label))
          | _ ->
              fail c ~at
                (Printf.sprintf "timer %S fired outside an input state" label))

let check auto ~pid ~tag_of trace =
  let c =
    {
      state = A.initial auto;
      pool = [];
      finished = false;
      deviation = None;
    }
  in
  settle auto c ~at:Sim.Sim_time.zero;
  List.iter
    (fun entry ->
      if c.deviation = None then
        match entry with
        | Sim.Trace.Sent { t; src; dst; msg; _ } when src = pid ->
            on_sent auto tag_of c ~at:t ~dst msg
        | Sim.Trace.Delivered { t; src; dst; msg; _ } when dst = pid ->
            on_delivered auto c ~at:t ~src msg
        | Sim.Trace.Timer_fired { t; owner; label } when owner = pid ->
            on_timer auto c ~at:t ~label
        | _ -> ())
    (Sim.Trace.to_list trace);
  match c.deviation with
  | Some d -> Error d
  | None -> (
      (* a run may legitimately end mid-protocol (the process is waiting),
         but never between an output state being entered and its send *)
      match A.node auto c.state with
      | Some (A.Output { to_; _ }) when not c.finished ->
          Error
            {
              at = Sim.Trace.last_time trace;
              state = c.state;
              reason =
                Printf.sprintf "run ended with the send to %d still owed" to_;
            }
      | _ -> Ok ())
