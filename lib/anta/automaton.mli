(** Timed automata — the specification formalism of the paper.

    An automaton has named states of two kinds, exactly as in Figure 2 of
    the paper:

    - {e output} ("grey") states: the automaton spends a bounded amount of
      time computing, then performs the action [s(id, m)] of sending message
      [m] to participant [id], and moves to the next state;
    - {e input} ("white") states: the automaton stays there — possibly
      forever — until one of its outgoing transitions becomes enabled, and
      then takes it immediately. A transition is enabled by the receipt of a
      matching message [r(id, m)], or by its time-out guard
      [now >= x + a] becoming true on the local clock.

    Transitions may carry assignments [x := now] recording the local time at
    which they were taken, and may stash the received message in a data
    variable (that is how a certificate χ gets forwarded). {e Final} states
    mark termination.

    Side effects on the surrounding world (ledger operations, domain
    observations) are attached to transitions as [act] callbacks receiving
    the process's engine context — this keeps the automaton structure
    declarative and statically checkable while letting escrows actually move
    money when they take a step. *)

type state = string

type ('msg, 'obs) guard =
  | Receive of { from_ : int; describe : string; accept : 'msg -> bool }
      (** [r(from_, m)] for messages satisfying [accept]. *)
  | Deadline of { base : string; offset : Sim.Sim_time.t }
      (** [now >= base + offset] on the local clock; [base] is a clock
          variable that must have been assigned on every path reaching this
          state. *)

type ('msg, 'obs) branch = {
  guard : ('msg, 'obs) guard;
  save_msg : string option;  (** stash the received message in this data var *)
  save_now : string list;  (** [x := now] assignments *)
  b_act :
    ('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> 'msg option -> unit;
      (** side effects; the ['msg option] is the received message (None for
          deadline branches) *)
  next : state;
}

type ('msg, 'obs) node =
  | Output of {
      to_ : int;
      message : ('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> 'msg;
      o_act : ('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> unit;
      next : state;
    }
  | Input of ('msg, 'obs) branch list
  | Final of { f_act : ('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> unit }

type ('msg, 'obs) t

val make :
  name:string ->
  initial:state ->
  nodes:(state * ('msg, 'obs) node) list ->
  ('msg, 'obs) t
(** Raises [Invalid_argument] on duplicate state names or an unknown initial
    state. Deeper checks are in {!check}. *)

val name : ('msg, 'obs) t -> string
val initial : ('msg, 'obs) t -> state
val node : ('msg, 'obs) t -> state -> ('msg, 'obs) node option
val states : ('msg, 'obs) t -> state list

(** {1 Well-formedness — the executable core of property C}

    Property C (consistency) demands that each participant can actually
    abide by the protocol: every prescribed step must be executable. For an
    automaton this means: all transition targets exist; every input state
    has at least one branch; every deadline guard reads a clock variable
    assigned on {e every} path from the initial state to that guard; and a
    final state is reachable. *)

type check_error =
  | Unknown_target of { from_ : state; target : state }
  | Empty_input of state
  | Unassigned_clock of { at : state; var : string }
  | No_final_reachable
  | Unreachable_state of state

val check : ('msg, 'obs) t -> (unit, check_error list) result
val pp_check_error : Format.formatter -> check_error -> unit

(** {1 Builders} *)

val output :
  to_:int ->
  ?act:(('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> unit) ->
  message:(('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> 'msg) ->
  next:state ->
  unit ->
  ('msg, 'obs) node

val input : ('msg, 'obs) branch list -> ('msg, 'obs) node

val final :
  ?act:(('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> unit) ->
  unit ->
  ('msg, 'obs) node

val on_receive :
  from_:int ->
  ?describe:string ->
  accept:('msg -> bool) ->
  ?save_msg:string ->
  ?save_now:string list ->
  ?act:(('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> 'msg option -> unit) ->
  next:state ->
  unit ->
  ('msg, 'obs) branch

val on_deadline :
  base:string ->
  offset:Sim.Sim_time.t ->
  ?save_now:string list ->
  ?act:(('msg, 'obs) Sim.Engine.ctx -> 'msg Store.t -> 'msg option -> unit) ->
  next:state ->
  unit ->
  ('msg, 'obs) branch

(** {1 Rendering} *)

val to_dot : ('msg, 'obs) t -> string
(** Graphviz rendering in the visual style of the paper's Figure 2: grey
    boxes for output states, white circles for input states, double circles
    for final states. *)
