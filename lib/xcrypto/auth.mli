(** Simulated digital signatures — the paper's "Byzantine model with
    authentication".

    Signing authority is a {e capability}: holding a {!signer} is what lets
    code sign as that identity. Honest processes receive exactly their own
    signer; Byzantine processes can attempt forgeries by fabricating
    signature bytes, and verification rejects them. This reproduces the
    authenticated Byzantine model without real cryptography: within the
    simulation, unforgeability holds by construction (the MAC secret never
    leaves this module), and tests assert that fabricated signatures fail
    {!verify}. *)

type id = int
(** Identities coincide with engine pids. *)

type signature
type signer
type registry

val create : seed:int -> registry

val register : registry -> id -> signer
(** Mint the signing capability for [id]. Each id can be registered once;
    re-registering raises. *)

val signer_id : signer -> id

val sign : signer -> string -> signature
val verify : registry -> id -> string -> signature -> bool
(** [verify reg id msg s]: was [s] produced by [id]'s signer over exactly
    [msg]? *)

val forged : id -> signature
(** A fabricated signature claiming to be from [id]. Always fails
    {!verify} — provided for Byzantine strategies and negative tests. *)

val pp_signature : Format.formatter -> signature -> unit

(** {1 Signed values} *)

type 'a signed = private { payload : 'a; author : id; signature : signature }

val sign_value : signer -> ser:('a -> string) -> 'a -> 'a signed
val verify_value : registry -> ser:('a -> string) -> 'a signed -> bool
(** Checks the signature against the claimed [author] and re-serialized
    payload — a tampered payload or wrong author fails. *)

val forge_value : author:id -> 'a -> 'a signed
(** A signed value with a fabricated signature; fails {!verify_value}. *)
