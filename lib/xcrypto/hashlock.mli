(** Hashlocks for HTLC-style protocols.

    A secret preimage [s] and its lock [H(s)]: funds can be made releasable
    only to a party presenting [s]. Used by the baseline hashed-timelock
    payment chain (the protocol family the paper's protocols improve on). *)

type preimage
type lock

val fresh : Sim.Rng.t -> preimage
(** A random secret. *)

val lock_of : preimage -> lock
val matches : lock -> preimage -> bool

val equal_lock : lock -> lock -> bool
val pp_lock : Format.formatter -> lock -> unit
val pp_preimage : Format.formatter -> preimage -> unit

val bogus_preimage : unit -> preimage
(** A preimage that matches no honest lock (for Byzantine strategies). *)
