(** Collision-resistant-enough hashing for simulation.

    A 128-bit digest built from two independent 64-bit FNV-1a passes. This is
    {e not} cryptographic strength — it is a stand-in whose only job inside
    the simulator is to make accidental collisions and preimage guessing
    astronomically unlikely, so that hashlocks and signatures behave like
    their real counterparts. The paper only relies on unforgeability and
    binding, which this provides against the simulated adversaries (who, by
    construction, do not brute-force). *)

type t
(** A digest. Structural equality and comparison are meaningful. *)

val of_string : string -> t
val concat : t -> t -> t
(** Digest of the pair, order-sensitive. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_hex : t -> string
val pp : Format.formatter -> t -> unit

val short : t -> string
(** First 8 hex chars — for logs. *)
