type preimage = string
type lock = Hash.t

let fresh rng =
  Printf.sprintf "pre-%Lx%Lx" (Sim.Rng.next_int64 rng) (Sim.Rng.next_int64 rng)

let lock_of p = Hash.of_string p
let matches l p = Hash.equal l (Hash.of_string p)
let equal_lock = Hash.equal
let pp_lock ppf l = Fmt.pf ppf "lock<%s>" (Hash.short l)
let pp_preimage ppf p = Fmt.pf ppf "pre<%s>" p
let bogus_preimage () = "bogus-preimage"
