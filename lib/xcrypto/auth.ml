type id = int
type signature = { claimed : id; mac : Hash.t }
type registry = { secrets : (id, string) Hashtbl.t; rng : Sim.Rng.t }
type signer = { sid : id; secret : string }

let create ~seed = { secrets = Hashtbl.create 16; rng = Sim.Rng.create ~seed }

let register reg id =
  if Hashtbl.mem reg.secrets id then
    invalid_arg (Printf.sprintf "Auth.register: id %d already registered" id);
  let secret =
    Printf.sprintf "sk-%d-%Lx-%Lx" id (Sim.Rng.next_int64 reg.rng)
      (Sim.Rng.next_int64 reg.rng)
  in
  Hashtbl.add reg.secrets id secret;
  { sid = id; secret }

let signer_id s = s.sid

let mac ~secret ~id msg =
  Hash.of_string (Printf.sprintf "%s|%d|%s" secret id msg)

let sign s msg = { claimed = s.sid; mac = mac ~secret:s.secret ~id:s.sid msg }

let verify reg id msg s =
  s.claimed = id
  &&
  match Hashtbl.find_opt reg.secrets id with
  | None -> false
  | Some secret -> Hash.equal s.mac (mac ~secret ~id msg)

let forged id = { claimed = id; mac = Hash.of_string "forged" }

let pp_signature ppf s = Fmt.pf ppf "sig<%d:%s>" s.claimed (Hash.short s.mac)

type 'a signed = { payload : 'a; author : id; signature : signature }

let sign_value signer ~ser payload =
  {
    payload;
    author = signer.sid;
    signature = sign signer (ser payload);
  }

let verify_value reg ~ser sv =
  verify reg sv.author (ser sv.payload) sv.signature

let forge_value ~author payload =
  { payload; author; signature = forged author }
