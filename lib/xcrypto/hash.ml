type t = { a : int64; b : int64 }

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a ~seed s =
  let h = ref (Int64.logxor fnv_offset seed) in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  (* final avalanche (splitmix-style) to decorrelate the two passes *)
  let z = !h in
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  Int64.(logxor z (shift_right_logical z 31))

let of_string s = { a = fnv1a ~seed:0L s; b = fnv1a ~seed:0x9E3779B97F4A7C15L s }

let to_hex t = Printf.sprintf "%016Lx%016Lx" t.a t.b
let concat x y = of_string (to_hex x ^ to_hex y)
let equal x y = Int64.equal x.a y.a && Int64.equal x.b y.b

let compare x y =
  let c = Int64.compare x.a y.a in
  if c <> 0 then c else Int64.compare x.b y.b

let pp ppf t = Fmt.string ppf (to_hex t)
let short t = String.sub (to_hex t) 0 8
